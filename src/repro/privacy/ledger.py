"""Durable, crash-safe ε accounting: the persistent privacy ledger.

Privacy budget is the one resource where a robustness bug is a correctness
bug: an ε ledger that loses a spend under a crash silently breaks the
end-to-end DP guarantee, and one that replays a spend starves tenants of
budget they never used.  This module gives the in-memory
:class:`~repro.privacy.accountant.PrivacyAccountant` a database-grade
on-disk twin:

* **Append-only JSON-lines WAL.**  Every state change is one checksummed
  record appended with a single ``os.write`` and made durable with
  ``fsync`` before the operation reports success.  The file is the
  auditable witness of every committed operation: nothing is ever updated
  in place.
* **Two-phase spend.**  A fit first *reserves* its ε
  (:meth:`EpsilonLedger.reserve` — this is also the admission-control
  check), runs, and then either *commits* the reservation with the
  accountant's actual per-stage breakdown or *aborts* it.  A crash between
  reserve and commit leaves a pending reservation that recovery rolls back,
  so an interrupted fit either completed atomically or leaves no spend.
* **Recovery by replay.**  Opening a ledger replays the WAL: checksums are
  verified, a torn final record (the signature of a crash mid-append) is
  truncated away, corruption anywhere else refuses to load
  (:class:`LedgerCorruptionError` — silent data loss is worse than
  downtime), and pending reservations are rolled back with explicit
  ``abort`` records so the rollback itself is witnessed.
* **Compaction.**  The WAL is periodically folded into a single snapshot
  record written to a temp file and atomically ``os.replace``-d over the
  ledger, so a long-lived service's ledger stays O(live state), not
  O(history).

:class:`LedgerStore` manages one ledger per tenant under a directory —
the multi-tenant form the HTTP service uses, with per-tenant budgets.

Integration with the accountant is one call: run the fit, then
``txn.commit(accountant=result.accountant)`` persists the accountant's
:meth:`~repro.privacy.accountant.PrivacyAccountant.breakdown` as the
committed spend.

Fault points (see :mod:`repro.testing.faults`) are compiled into every
durability boundary — ``ledger.reserve.before_append``,
``ledger.commit.before_fsync``, ``ledger.compact.before_replace``, ... —
so tests can kill the process at each one and prove that a reopened ledger
is exact: no double-spend, no lost spend.

On the crash model: within one machine, a record written but not yet
fsync'd is visible to a reopening reader (the page cache survives process
death), so a crash at ``*.before_fsync`` behaves like a completed append;
power loss could instead drop or tear it, which is the
``*.before_append`` / torn-tail case.  The recovery tests cover all three.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple, Union

try:  # pragma: no cover - always present on the POSIX targets we support
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

from repro.privacy.budget import BudgetExceededError
from repro.testing.faults import fire
from repro.utils.validation import check_epsilon

logger = logging.getLogger("repro.privacy.ledger")

#: Format tag carried by every ledger record.
LEDGER_FORMAT = "repro.epsilon-ledger"

#: Current version of the ledger record format.
LEDGER_FORMAT_VERSION = 1

#: Relative tolerance for budget checks (matches the accountant's).
_OVERDRAFT_TOLERANCE = 1e-9

#: Default number of WAL records that triggers automatic compaction.
DEFAULT_COMPACT_THRESHOLD = 1024

#: Tenant that requests without an explicit ``tenant`` field are billed to.
DEFAULT_TENANT = "public"

#: Every durability boundary instrumented with a fault point, in the order
#: a reserve → commit/abort cycle crosses them.  The crash-recovery matrix
#: in ``tests/privacy/test_ledger_recovery.py`` iterates this tuple, so a
#: new fault point added here is automatically covered.
LEDGER_FAULT_POINTS: Tuple[str, ...] = (
    "ledger.reserve.before_append",
    "ledger.reserve.before_fsync",
    "ledger.reserve.after_fsync",
    "ledger.commit.before_append",
    "ledger.commit.before_fsync",
    "ledger.commit.after_fsync",
    "ledger.abort.before_append",
    "ledger.abort.before_fsync",
    "ledger.compact.before_replace",
    "ledger.compact.after_replace",
)


class LedgerError(RuntimeError):
    """Base class for ledger problems."""


class LedgerCorruptionError(LedgerError):
    """The WAL contains a record that fails its checksum (not at the tail).

    A torn *final* record is the expected signature of a crash mid-append
    and is repaired silently; corruption anywhere else means the file was
    damaged and the ledger refuses to guess.
    """


def _checksum(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _encode_record(record: Dict[str, Any]) -> bytes:
    """Serialise ``record`` with an integrity checksum into one WAL line."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    line = json.dumps({**record, "c": _checksum(payload)},
                      sort_keys=True, separators=(",", ":"))
    return line.encode("utf-8") + b"\n"


def _decode_record(line: bytes) -> Optional[Dict[str, Any]]:
    """Parse and verify one WAL line; ``None`` when torn or corrupt."""
    try:
        record = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(record, dict):
        return None
    stored = record.pop("c", None)
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    if stored != _checksum(payload):
        return None
    return record


class LedgerTransaction:
    """One two-phase spend: reserved ε awaiting :meth:`commit` or :meth:`abort`.

    Usable as a context manager: leaving the block without having committed
    aborts the reservation (mirroring "an interrupted fit leaves no trace"),
    except for simulated process death, which recovery must repair instead.
    """

    __slots__ = ("_ledger", "txn_id", "epsilon", "_state")

    def __init__(self, ledger: "EpsilonLedger", txn_id: str, epsilon: float
                 ) -> None:
        self._ledger = ledger
        self.txn_id = txn_id
        self.epsilon = epsilon
        self._state = "pending"

    @property
    def open(self) -> bool:
        """Whether the reservation still awaits commit/abort."""
        return self._state == "pending"

    def commit(self, spends: Optional[Mapping[str, float]] = None,
               accountant: Optional[object] = None) -> None:
        """Commit the reservation, recording the actual per-stage spends.

        ``accountant`` (a :class:`~repro.privacy.accountant.PrivacyAccountant`)
        is the usual source: its dotted-path breakdown and total become the
        committed record.  Without either, the reserved ε commits in full.
        """
        if accountant is not None:
            if spends is not None:
                raise ValueError("give either 'spends' or 'accountant', not both")
            spends = accountant.breakdown()
        self._ledger._commit(self, spends)
        self._state = "committed"

    def abort(self) -> None:
        """Roll the reservation back (no ε is spent)."""
        self._ledger._abort(self)
        self._state = "aborted"

    def __enter__(self) -> "LedgerTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.open:
            from repro.testing.faults import is_simulated_crash

            if exc is not None and is_simulated_crash(exc):
                # A dead process runs no cleanup: do NOT abort.  But the
                # in-memory ledger object is part of the "dead" process —
                # mark it so the store reopens it (running recovery, which
                # rolls this reservation back) instead of serving a live
                # object with a reservation nothing will ever release.
                self._ledger._mark_dead()
                return
            self.abort()


class EpsilonLedger:
    """A durable, single-file ε ledger with two-phase spends.

    Parameters
    ----------
    path:
        The WAL file (created, with its parent directory, when missing).
    budget:
        Optional ε cap.  When set, :meth:`reserve` (and :meth:`check`)
        refuse spends that would push committed + pending ε beyond it —
        this is the admission-control primitive.  ``None`` means
        record-keeping only.
    tenant:
        Display name recorded in snapshots (the store sets it).
    compact_threshold:
        Records in the WAL beyond which a commit/abort triggers automatic
        compaction (``0`` disables).
    shared:
        Multi-process mode.  When ``True``, every top-level operation takes
        an exclusive ``fcntl.flock`` on a ``<path>.lock`` sidecar and first
        *refreshes* the in-memory state from the WAL — replaying records
        appended by sibling processes since the last look (tracked by byte
        offset), and reopening + fully replaying when the file's inode
        changed (a sibling compacted).  Budget checks therefore see every
        process's committed **and pending** ε: N workers sharing one tenant
        file cannot jointly overspend.  The lock file is separate from the
        WAL so locking never interferes with compaction's atomic rename.
    recover_pending:
        Whether opening the ledger rolls back pending reservations (the
        single-process crash-recovery default).  Shared-mode *workers* must
        pass ``False``: a sibling process's reservation is pending while its
        fit runs, and "recovering" it would abort a live spend.  The
        supervisor runs one ``recover_pending=True`` pass before any worker
        starts (see :meth:`LedgerStore.recover_all`), when no fit can be in
        flight.

    Thread safety: all operations serialise on one internal lock, so the
    multi-threaded HTTP service can share a ledger per tenant.

    Failure poisoning: if an append crashes partway (an injected fault or a
    real I/O error), the in-memory state can no longer be trusted to match
    the file, so the ledger marks itself *poisoned* and every later
    operation raises :class:`LedgerError` until the ledger is reopened —
    reopening runs recovery, which is the only trustworthy repair.
    :meth:`LedgerStore.ledger` does this transparently.
    """

    def __init__(self, path: Union[str, Path], *,
                 budget: Optional[float] = None,
                 tenant: Optional[str] = None,
                 compact_threshold: int = DEFAULT_COMPACT_THRESHOLD,
                 shared: bool = False,
                 recover_pending: bool = True) -> None:
        self._path = Path(path)
        self._budget = None if budget is None else check_epsilon(budget, "budget")
        self._tenant = tenant
        self._compact_threshold = max(0, int(compact_threshold))
        self._shared = bool(shared)
        self._recover_pending = bool(recover_pending)
        self._lock = threading.RLock()
        self._committed: Dict[str, Dict[str, Any]] = {}
        self._pending: Dict[str, float] = {}
        self._records = 0
        self._offset = 0
        self._poisoned = False
        self._closed = False
        self.recovered_txns: Tuple[str, ...] = ()
        self._path.parent.mkdir(parents=True, exist_ok=True)
        if self._shared and fcntl is None:  # pragma: no cover - non-POSIX
            raise LedgerError(
                f"{self._path}: shared mode needs fcntl file locking, which "
                f"this platform does not provide"
            )
        self._lock_fd = -1
        if self._shared:
            self._lock_fd = os.open(self._path.with_name(self._path.name
                                                         + ".lock"),
                                    os.O_CREAT | os.O_RDWR, 0o600)
        self._fd = os.open(self._path, os.O_APPEND | os.O_CREAT | os.O_RDWR,
                           0o600)
        try:
            if self._shared:
                # Recovery reads — and may truncate a torn tail of — the
                # shared WAL; hold the cross-process lock so a sibling's
                # in-flight append is never misread as torn.
                fcntl.flock(self._lock_fd, fcntl.LOCK_EX)
                try:
                    self._recover()
                finally:
                    fcntl.flock(self._lock_fd, fcntl.LOCK_UN)
            else:
                self._recover()
        except BaseException:
            os.close(self._fd)
            if self._lock_fd >= 0:
                os.close(self._lock_fd)
            raise

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        raw = self._path.read_bytes()
        lines = raw.split(b"\n")
        trailer = lines.pop()  # b"" after a clean final newline
        good_bytes = 0
        for index, line in enumerate(lines):
            if not line:
                good_bytes += 1  # a bare newline; tolerate
                continue
            record = _decode_record(line)
            if record is None:
                if index == len(lines) - 1 and not trailer:
                    # Torn final record: crash mid-append.  Truncate it.
                    logger.warning("ledger %s: discarding torn final record",
                                   self._path)
                    break
                raise LedgerCorruptionError(
                    f"{self._path}: record {index + 1} fails its checksum; "
                    f"refusing to load a damaged ledger"
                )
            self._apply(record)
            good_bytes += len(line) + 1
        if trailer:
            # Trailing bytes with no newline: a torn append.  Verify they do
            # not happen to checksum (they cannot — no trailing newline means
            # the write was cut short) and drop them.
            logger.warning("ledger %s: discarding %d torn trailing bytes",
                           self._path, len(trailer))
        if good_bytes != len(raw):
            os.ftruncate(self._fd, good_bytes)
            os.fsync(self._fd)
        self._offset = good_bytes
        if not self._recover_pending:
            # Shared-mode workers: a pending reservation may belong to a
            # *live* sibling process mid-fit — leave it alone.  The
            # supervisor's pre-fork recovery pass is the one that rolls back
            # genuinely orphaned reservations.
            self.recovered_txns = ()
            return
        # Roll back reservations interrupted by a crash, witnessing each
        # rollback with an explicit abort record.
        interrupted = tuple(self._pending)
        for txn_id in interrupted:
            self._append("abort", {"txn": txn_id, "recovered": True},
                         point="ledger.abort")
            del self._pending[txn_id]
        self.recovered_txns = interrupted
        if interrupted:
            logger.warning("ledger %s: rolled back %d interrupted spend(s): %s",
                           self._path, len(interrupted), ", ".join(interrupted))

    def _apply(self, record: Dict[str, Any]) -> None:
        """Replay one verified WAL record into the in-memory state."""
        kind = record.get("kind")
        self._records += 1
        if kind == "snapshot":
            self._committed = {
                txn: dict(entry)
                for txn, entry in record.get("committed", {}).items()
            }
            self._pending = {}
        elif kind == "reserve":
            txn = record["txn"]
            if txn in self._pending or txn in self._committed:
                raise LedgerCorruptionError(
                    f"{self._path}: duplicate reserve for txn {txn!r}"
                )
            self._pending[txn] = float(record["epsilon"])
        elif kind == "commit":
            txn = record["txn"]
            if txn not in self._pending:
                raise LedgerCorruptionError(
                    f"{self._path}: commit for unknown txn {txn!r}"
                )
            del self._pending[txn]
            self._committed[txn] = {
                "epsilon": float(record["epsilon"]),
                "spends": dict(record.get("spends", {})),
            }
        elif kind == "abort":
            # Recovery-written aborts may target a txn we already rolled
            # back in memory on a previous open; tolerate unknown txns.
            self._pending.pop(record["txn"], None)
        else:
            raise LedgerCorruptionError(
                f"{self._path}: unknown record kind {kind!r}"
            )

    # ------------------------------------------------------------------
    # Cross-process coordination (shared mode)
    # ------------------------------------------------------------------
    @contextmanager
    def _exclusive(self) -> Iterator[None]:
        """Serialise a top-level operation, across threads and processes.

        In shared mode this holds the flock for the operation's duration
        and refreshes the in-memory state first, so the operation acts on
        the union of every process's records.  Single-process mode reduces
        to the plain thread lock.
        """
        with self._lock:
            if not self._shared:
                yield
                return
            fcntl.flock(self._lock_fd, fcntl.LOCK_EX)
            try:
                self._refresh_locked()
                yield
            finally:
                fcntl.flock(self._lock_fd, fcntl.LOCK_UN)

    def _refresh_locked(self) -> None:
        """Catch up with sibling processes' WAL records (flock held).

        Two cases: the file was atomically replaced by a sibling's
        compaction (inode changed — reopen and replay from scratch), or it
        simply grew (replay the tail from the saved byte offset).  A torn
        tail can only be the leavings of a crashed sibling — every live
        append happens under the flock we now hold — so it is truncated
        exactly like open-time recovery would.
        """
        if self._poisoned or self._closed:
            return
        try:
            st_path = os.stat(self._path)
        except FileNotFoundError:  # pragma: no cover - operator interference
            raise LedgerError(f"{self._path}: ledger file disappeared")
        st_fd = os.fstat(self._fd)
        if (st_path.st_ino, st_path.st_dev) != (st_fd.st_ino, st_fd.st_dev):
            # A sibling compacted: our fd points at the old inode.
            os.close(self._fd)
            self._fd = os.open(self._path,
                               os.O_APPEND | os.O_CREAT | os.O_RDWR, 0o600)
            self._committed = {}
            self._pending = {}
            self._records = 0
            self._offset = 0
            st_path = os.stat(self._path)
        if st_path.st_size < self._offset:  # pragma: no cover - see above
            raise LedgerError(
                f"{self._path}: ledger shrank outside compaction; refusing "
                f"to guess at its state"
            )
        if st_path.st_size == self._offset:
            return
        raw = os.pread(self._fd, st_path.st_size - self._offset, self._offset)
        lines = raw.split(b"\n")
        trailer = lines.pop()
        consumed = 0
        for index, line in enumerate(lines):
            if not line:
                consumed += 1
                continue
            record = _decode_record(line)
            if record is None:
                if index == len(lines) - 1 and not trailer:
                    logger.warning(
                        "ledger %s: discarding a crashed sibling's torn "
                        "final record", self._path,
                    )
                    break
                raise LedgerCorruptionError(
                    f"{self._path}: sibling-appended record fails its "
                    f"checksum; refusing to load a damaged ledger"
                )
            self._apply(record)
            consumed += len(line) + 1
        self._offset += consumed
        if self._offset != st_path.st_size:
            os.ftruncate(self._fd, self._offset)
            os.fsync(self._fd)

    # ------------------------------------------------------------------
    # The write path
    # ------------------------------------------------------------------
    def _append(self, kind: str, payload: Dict[str, Any], *, point: str
                ) -> None:
        """Append one record durably, firing the boundary fault points."""
        if self._poisoned:
            raise LedgerError(
                f"{self._path}: ledger is poisoned after a failed append; "
                f"reopen it to run recovery"
            )
        if self._closed:
            raise LedgerError(f"{self._path}: ledger is closed")
        record = {"kind": kind, "v": LEDGER_FORMAT_VERSION, **payload}
        line = _encode_record(record)
        try:
            fire(f"{point}.before_append")
            os.write(self._fd, line)
            fire(f"{point}.before_fsync")
            os.fsync(self._fd)
            fire(f"{point}.after_fsync")
        except BaseException:
            # The file and the in-memory state may now disagree; only
            # recovery (a reopen) can re-establish truth.
            self._poisoned = True
            raise
        self._records += 1
        # Our own append must not be replayed by the next refresh.
        self._offset += len(line)

    def _mark_dead(self) -> None:
        """Invalidate the in-memory state (simulated process death).

        Nothing is written; the next :meth:`LedgerStore.ledger` call reopens
        the file, and recovery repairs whatever the "crash" interrupted.
        """
        with self._lock:
            self._poisoned = True

    # ------------------------------------------------------------------
    # Aggregate views
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        """The WAL file."""
        return self._path

    @property
    def budget(self) -> Optional[float]:
        """The tenant's ε cap (``None``: record-keeping only)."""
        return self._budget

    @property
    def poisoned(self) -> bool:
        """Whether a failed append invalidated the in-memory state."""
        return self._poisoned

    @property
    def spent(self) -> float:
        """Total committed ε."""
        with self._lock:
            return float(sum(entry["epsilon"]
                             for entry in self._committed.values()))

    @property
    def pending(self) -> float:
        """Total ε reserved by open (uncommitted) transactions."""
        with self._lock:
            return float(sum(self._pending.values()))

    @property
    def remaining(self) -> float:
        """Budget headroom (``inf`` without a budget)."""
        if self._budget is None:
            return float("inf")
        with self._lock:
            return max(0.0, self._budget - self.spent - self.pending)

    def spends(self) -> Dict[str, float]:
        """Committed spend aggregated per dotted stage path."""
        totals: Dict[str, float] = {}
        with self._lock:
            for entry in self._committed.values():
                breakdown = entry.get("spends") or {}
                if breakdown:
                    for key, value in breakdown.items():
                        totals[key] = totals.get(key, 0.0) + float(value)
                else:
                    totals["total"] = totals.get("total", 0.0) + entry["epsilon"]
        return totals

    def as_dict(self) -> Dict[str, Any]:
        """Serialisable summary (the service's ``GET /ledgers`` view)."""
        with self._exclusive():
            return {
                "tenant": self._tenant,
                "path": str(self._path),
                "budget": self._budget,
                "spent": self.spent,
                "pending": self.pending,
                "remaining": (None if self._budget is None else self.remaining),
                "committed_txns": len(self._committed),
                "records": self._records,
            }

    # ------------------------------------------------------------------
    # Two-phase spending
    # ------------------------------------------------------------------
    def check(self, epsilon: float) -> None:
        """Admission control: raise unless ``epsilon`` fits the budget now.

        Advisory (state can change before the reserve); the authoritative
        check is :meth:`reserve`, which holds the lock across check+append.
        """
        epsilon = check_epsilon(epsilon, "epsilon")
        with self._exclusive():
            self._check_locked(epsilon)

    def _check_locked(self, epsilon: float) -> None:
        if self._budget is None:
            return
        committed = self.spent + self.pending
        if committed + epsilon > self._budget * (1.0 + _OVERDRAFT_TOLERANCE):
            raise BudgetExceededError(
                f"tenant budget exceeded: spending {epsilon:.6g} would take "
                f"committed+pending ε to {committed + epsilon:.6g} of "
                f"{self._budget:.6g}"
            )

    def reserve(self, epsilon: float, txn_id: Optional[str] = None
                ) -> LedgerTransaction:
        """Phase one: durably reserve ``epsilon`` against the budget.

        Returns the open :class:`LedgerTransaction`.  Raises
        :class:`~repro.privacy.budget.BudgetExceededError` when the budget
        cannot cover the reservation, before anything is written.
        """
        epsilon = check_epsilon(epsilon, "epsilon")
        txn_id = txn_id or f"txn-{uuid.uuid4().hex[:12]}"
        with self._exclusive():
            if txn_id in self._pending or txn_id in self._committed:
                raise LedgerError(f"transaction id {txn_id!r} already used")
            self._check_locked(epsilon)
            self._append("reserve", {"txn": txn_id, "epsilon": epsilon},
                         point="ledger.reserve")
            self._pending[txn_id] = epsilon
        return LedgerTransaction(self, txn_id, epsilon)

    def _commit(self, txn: LedgerTransaction,
                spends: Optional[Mapping[str, float]]) -> None:
        with self._exclusive():
            if txn.txn_id not in self._pending:
                raise LedgerError(
                    f"cannot commit {txn.txn_id!r}: not an open reservation "
                    f"(double commit, or committed by a previous incarnation)"
                )
            breakdown = {key: float(value) for key, value in (spends or {}).items()}
            epsilon = (float(sum(breakdown.values())) if breakdown
                       else self._pending[txn.txn_id])
            self._append(
                "commit",
                {"txn": txn.txn_id, "epsilon": epsilon, "spends": breakdown},
                point="ledger.commit",
            )
            del self._pending[txn.txn_id]
            self._committed[txn.txn_id] = {"epsilon": epsilon,
                                           "spends": breakdown}
            self._maybe_compact_locked()

    def _abort(self, txn: LedgerTransaction) -> None:
        with self._exclusive():
            if txn.txn_id not in self._pending:
                raise LedgerError(
                    f"cannot abort {txn.txn_id!r}: not an open reservation"
                )
            self._append("abort", {"txn": txn.txn_id}, point="ledger.abort")
            del self._pending[txn.txn_id]
            self._maybe_compact_locked()

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def _maybe_compact_locked(self) -> None:
        if self._compact_threshold and self._records >= self._compact_threshold:
            self._compact_locked()

    def compact(self) -> None:
        """Fold the WAL into one snapshot record (atomic rename)."""
        with self._exclusive():
            self._compact_locked()

    def _compact_locked(self) -> None:
        if self._poisoned or self._closed:
            raise LedgerError(f"{self._path}: cannot compact a "
                              f"{'poisoned' if self._poisoned else 'closed'} "
                              f"ledger")
        if self._pending:
            # Snapshots drop pending state by design (a snapshot asserts
            # "this is the complete committed truth"); compacting while a
            # spend is in flight would erase its reservation.
            return
        snapshot = _encode_record({
            "kind": "snapshot",
            "v": LEDGER_FORMAT_VERSION,
            "tenant": self._tenant,
            "committed": self._committed,
        })
        temp = self._path.with_name(self._path.name + f".compact-{os.getpid()}")
        try:
            temp_fd = os.open(temp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
            try:
                os.write(temp_fd, snapshot)
                os.fsync(temp_fd)
            finally:
                os.close(temp_fd)
            fire("ledger.compact.before_replace")
            os.replace(temp, self._path)
            fire("ledger.compact.after_replace")
        except BaseException:
            self._poisoned = True
            try:
                os.unlink(temp)
            except OSError:
                pass
            raise
        # Swap the append fd to the new file.
        old_fd = self._fd
        self._fd = os.open(self._path, os.O_APPEND | os.O_CREAT | os.O_RDWR,
                           0o600)
        os.close(old_fd)
        self._records = 1
        self._offset = len(snapshot)
        self._fsync_parent()

    def _fsync_parent(self) -> None:
        """Make the rename itself durable (POSIX directory fsync)."""
        try:
            parent_fd = os.open(self._path.parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(parent_fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(parent_fd)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the WAL file descriptor (idempotent)."""
        with self._lock:
            if not self._closed:
                self._closed = True
                os.close(self._fd)
                if self._lock_fd >= 0:
                    os.close(self._lock_fd)
                    self._lock_fd = -1

    def __enter__(self) -> "EpsilonLedger":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"EpsilonLedger({str(self._path)!r}, budget={self._budget}, "
                f"spent={self.spent:.6g}, pending={self.pending:.6g})")


def _check_tenant_name(tenant: str) -> str:
    """Validate a tenant id (it becomes a file name — keep it boring)."""
    if (not tenant or not isinstance(tenant, str) or len(tenant) > 64
            or not all((ch.isascii() and ch.isalnum()) or ch in "._-"
                       for ch in tenant)
            or tenant.startswith(".")):
        raise ValueError(
            f"tenant must be 1-64 chars of [A-Za-z0-9._-], not starting "
            f"with '.', got {tenant!r}"
        )
    return tenant


class LedgerStore:
    """A directory of per-tenant :class:`EpsilonLedger` files.

    Parameters
    ----------
    directory:
        Where ledgers live; one ``<tenant>.ledger.jsonl`` per tenant.
    default_budget:
        ε cap applied to tenants without an explicit entry in ``budgets``
        (``None``: unlimited, record-keeping only).
    budgets:
        Per-tenant ε caps overriding the default.
    compact_threshold:
        Forwarded to each ledger.
    shared / recover_pending:
        Forwarded to each ledger (see :class:`EpsilonLedger`).  Worker
        processes of a multi-process server open their stores with
        ``shared=True, recover_pending=False``; the supervisor's pre-fork
        :meth:`recover_all` pass keeps the default ``recover_pending=True``.

    Ledgers open lazily on first use and are cached; a ledger poisoned by a
    failed append is transparently reopened (running recovery) on the next
    :meth:`ledger` call, which is how the long-lived service self-heals
    after a crashed spend.
    """

    LEDGER_SUFFIX = ".ledger.jsonl"

    def __init__(self, directory: Union[str, Path], *,
                 default_budget: Optional[float] = None,
                 budgets: Optional[Mapping[str, float]] = None,
                 compact_threshold: int = DEFAULT_COMPACT_THRESHOLD,
                 shared: bool = False,
                 recover_pending: bool = True) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._default_budget = (None if default_budget is None
                                else check_epsilon(default_budget,
                                                   "default_budget"))
        self._budgets = {
            _check_tenant_name(tenant): check_epsilon(value, f"budgets[{tenant}]")
            for tenant, value in (budgets or {}).items()
        }
        self._compact_threshold = compact_threshold
        self._shared = bool(shared)
        self._recover_pending = bool(recover_pending)
        self._lock = threading.Lock()
        self._ledgers: Dict[str, EpsilonLedger] = {}

    @property
    def directory(self) -> Path:
        """The store's root directory."""
        return self._directory

    def budget_for(self, tenant: str) -> Optional[float]:
        """The ε cap that applies to ``tenant``."""
        return self._budgets.get(tenant, self._default_budget)

    def ledger(self, tenant: str) -> EpsilonLedger:
        """The tenant's ledger, opened (and recovered) on first use.

        A poisoned cached ledger is closed and reopened here — reopening
        replays the WAL, which is the designed repair path.
        """
        tenant = _check_tenant_name(tenant)
        with self._lock:
            cached = self._ledgers.get(tenant)
            if cached is not None and not cached.poisoned:
                return cached
            if cached is not None:
                cached.close()
            opened = EpsilonLedger(
                self._directory / f"{tenant}{self.LEDGER_SUFFIX}",
                budget=self.budget_for(tenant),
                tenant=tenant,
                compact_threshold=self._compact_threshold,
                shared=self._shared,
                recover_pending=self._recover_pending,
            )
            self._ledgers[tenant] = opened
            return opened

    def tenants(self) -> List[str]:
        """Every tenant with a ledger file on disk (opened or not)."""
        names = {
            path.name[: -len(self.LEDGER_SUFFIX)]
            for path in self._directory.glob(f"*{self.LEDGER_SUFFIX}")
        }
        with self._lock:
            names.update(self._ledgers)
        return sorted(names)

    def as_dict(self) -> Dict[str, Any]:
        """Summaries of every tenant ledger (opens them read-wise)."""
        return {tenant: self.ledger(tenant).as_dict()
                for tenant in self.tenants()}

    def recover_all(self) -> Dict[str, Tuple[str, ...]]:
        """Open (and thereby recover) every tenant ledger on disk.

        The multi-process supervisor runs this once before forking any
        worker: with no worker alive, every pending reservation is a
        genuine orphan from a previous incarnation, so rolling them back
        here is safe — and workers can then open the same files with
        ``recover_pending=False``.  Returns the rolled-back transaction ids
        per tenant (empty tuples for clean ledgers).
        """
        return {tenant: self.ledger(tenant).recovered_txns
                for tenant in self.tenants()}

    def compact(self) -> None:
        """Compact every open ledger."""
        with self._lock:
            ledgers = list(self._ledgers.values())
        for ledger in ledgers:
            if not ledger.poisoned:
                ledger.compact()

    def close(self) -> None:
        """Close every open ledger (idempotent)."""
        with self._lock:
            ledgers = list(self._ledgers.values())
            self._ledgers.clear()
        for ledger in ledgers:
            ledger.close()

    def __enter__(self) -> "LedgerStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
