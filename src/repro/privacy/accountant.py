"""Hierarchical privacy-budget accounting for the staged synthesis engine.

The paper's Algorithm 3 is a composition of independently budgeted stages:
Θ_X, Θ_F and the structural statistics each consume a named share of the
global ε, and sequential composition (Theorem 2) requires the shares to sum
to at most ε.  :class:`PrivacyAccountant` makes that contract a first-class
object instead of ad-hoc fraction arithmetic:

* the accountant *owns* the global ε for a release;
* :meth:`PrivacyAccountant.allocate` / :meth:`PrivacyAccountant.split` hand
  out named :class:`SubBudget` reservations (sub-budgets can be split again,
  e.g. ``structural`` into ``degrees`` and ``triangles``);
* every mechanism invocation charges its sub-budget, and the accountant
  records the spend in a ledger keyed by the stage path
  (``"structural.degrees"``);
* any attempt to reserve or spend beyond what remains raises
  :class:`~repro.privacy.budget.BudgetExceededError` — overdrafts are bugs,
  not warnings.

The DP learners accept either a plain ``float`` epsilon (direct use, as in
the unit tests) or a :class:`SubBudget`; :func:`charge_epsilon` performs the
coercion and books the spend when an accountant is involved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.privacy.budget import BudgetExceededError
from repro.utils.validation import check_epsilon

#: Relative numerical tolerance for overdraft checks (matches PrivacyBudget).
_OVERDRAFT_TOLERANCE = 1e-9

StagePath = Tuple[str, ...]


@dataclass(frozen=True)
class _Charge:
    """One recorded expenditure, keyed by its full stage path."""

    path: StagePath
    epsilon: float


def _check_stage_name(stage: str) -> str:
    if not stage or not isinstance(stage, str):
        raise ValueError(f"stage name must be a non-empty string, got {stage!r}")
    if "." in stage:
        raise ValueError(
            f"stage names must not contain '.' (reserved for paths), got {stage!r}"
        )
    return stage


def _proportional_shares(weights: Mapping[str, float], available: float,
                         owner: str) -> Dict[str, float]:
    """Validate ``weights`` and split ``available`` proportionally."""
    if not weights:
        raise ValueError("weights must not be empty")
    weight_sum = float(sum(weights.values()))
    if weight_sum <= 0 or any(w < 0 for w in weights.values()):
        raise ValueError("weights must be non-negative and sum to a positive value")
    if available <= 0:
        raise BudgetExceededError(f"{owner} has no uncommitted budget to split")
    return {
        _check_stage_name(stage): available * weight / weight_sum
        for stage, weight in weights.items()
    }


class PrivacyAccountant:
    """Owns the global ε of a release and tracks how the stages spend it.

    Parameters
    ----------
    total_epsilon:
        The overall privacy parameter ε for the release.

    Examples
    --------
    >>> accountant = PrivacyAccountant(1.0)
    >>> subs = accountant.split({"attributes": 1, "correlations": 1,
    ...                          "structural": 2})
    >>> subs["attributes"].epsilon
    0.25
    >>> subs["attributes"].spend()
    0.25
    >>> accountant.spent
    0.25

    Notes
    -----
    The accountant is duck-compatible with the older
    :class:`~repro.privacy.budget.PrivacyBudget` surface (``total_epsilon``,
    ``spent``, ``remaining``, ``spend``, ``ledger``, ``summary``), so code
    that only inspected the returned ledger keeps working unchanged.
    """

    def __init__(self, total_epsilon: float) -> None:
        self._total = check_epsilon(total_epsilon, "total_epsilon")
        self._allocations: Dict[StagePath, "SubBudget"] = {}
        self._charges: List[_Charge] = []
        self._direct_spent = 0.0

    # ------------------------------------------------------------------
    # Aggregate views
    # ------------------------------------------------------------------
    @property
    def total_epsilon(self) -> float:
        """The global privacy budget ε."""
        return self._total

    @property
    def spent(self) -> float:
        """Total ε actually spent by mechanisms so far."""
        return float(sum(charge.epsilon for charge in self._charges))

    @property
    def remaining(self) -> float:
        """ε not yet spent (never negative)."""
        return max(0.0, self._total - self.spent)

    @property
    def allocated(self) -> float:
        """Total ε reserved by top-level allocations."""
        return float(
            sum(sub.epsilon for path, sub in self._allocations.items()
                if len(path) == 1)
        )

    @property
    def uncommitted(self) -> float:
        """ε neither reserved by an allocation nor spent directly."""
        return max(0.0, self._total - self.allocated - self._direct_spent)

    # ------------------------------------------------------------------
    # Reservations
    # ------------------------------------------------------------------
    def allocate(self, stage: str, epsilon: float) -> "SubBudget":
        """Reserve ``epsilon`` for the named ``stage`` and return its sub-budget.

        Raises
        ------
        BudgetExceededError
            If the reservation (together with earlier reservations and direct
            spends) would exceed the global budget.
        ValueError
            If the stage name is invalid or already allocated.
        """
        _check_stage_name(stage)
        epsilon = check_epsilon(epsilon, "epsilon")
        path = (stage,)
        if path in self._allocations:
            raise ValueError(f"stage {stage!r} is already allocated")
        committed = self.allocated + self._direct_spent
        if committed + epsilon > self._total * (1.0 + _OVERDRAFT_TOLERANCE):
            raise BudgetExceededError(
                f"allocating {epsilon:.6g} to {stage!r} would exceed the budget: "
                f"{committed:.6g} of {self._total:.6g} already committed"
            )
        sub = SubBudget(self, path, epsilon)
        self._allocations[path] = sub
        return sub

    def split(self, weights: Mapping[str, float]) -> Dict[str, "SubBudget"]:
        """Allocate the uncommitted budget proportionally to ``weights``.

        This is the SplitBudget step of Algorithm 3 expressed through the
        accountant: each named stage receives
        ``uncommitted * weight / sum(weights)``.
        """
        shares = _proportional_shares(weights, self.uncommitted, "the accountant")
        return {
            stage: self.allocate(stage, share) for stage, share in shares.items()
        }

    # ------------------------------------------------------------------
    # Spending
    # ------------------------------------------------------------------
    def spend(self, epsilon: float, label: str = "direct") -> float:
        """Record a direct (un-allocated) expenditure against the global budget.

        Mirrors :meth:`repro.privacy.budget.PrivacyBudget.spend`; stage-based
        code should prefer :meth:`allocate` / :meth:`SubBudget.spend`.
        """
        _check_stage_name(label)
        epsilon = check_epsilon(epsilon, "epsilon")
        committed = self.allocated + self._direct_spent
        if committed + epsilon > self._total * (1.0 + _OVERDRAFT_TOLERANCE):
            raise BudgetExceededError(
                f"spending {epsilon:.6g} would exceed the budget: "
                f"{committed:.6g} of {self._total:.6g} already committed"
            )
        self._direct_spent += epsilon
        self._record((label,), epsilon)
        return epsilon

    def _record(self, path: StagePath, epsilon: float) -> None:
        self._charges.append(_Charge(path=path, epsilon=epsilon))

    def _register_child(self, sub: "SubBudget") -> None:
        if sub.path in self._allocations:
            raise ValueError(f"stage path {'.'.join(sub.path)!r} already allocated")
        self._allocations[sub.path] = sub

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def ledger(self) -> List[Tuple[str, float]]:
        """Charges in order, labelled by their *top-level* stage name.

        Compatible with the ``PrivacyBudget.ledger()`` view the earlier
        workflow returned; use :meth:`breakdown` for full stage paths.
        """
        return [(charge.path[0], charge.epsilon) for charge in self._charges]

    def breakdown(self) -> Dict[str, float]:
        """Spend per full dotted stage path (``"structural.degrees"``)."""
        totals: Dict[str, float] = {}
        for charge in self._charges:
            key = ".".join(charge.path)
            totals[key] = totals.get(key, 0.0) + charge.epsilon
        return totals

    def summary(self) -> Dict[str, float]:
        """Spend aggregated by top-level stage name."""
        totals: Dict[str, float] = {}
        for charge in self._charges:
            key = charge.path[0]
            totals[key] = totals.get(key, 0.0) + charge.epsilon
        return totals

    def allocations(self) -> Dict[str, float]:
        """Reserved ε per dotted stage path."""
        return {
            ".".join(path): sub.epsilon for path, sub in self._allocations.items()
        }

    def as_dict(self) -> Dict[str, object]:
        """Serializable snapshot: total, reservations, spends."""
        return {
            "total_epsilon": self._total,
            "allocations": self.allocations(),
            "spends": self.breakdown(),
            "spent": self.spent,
            "remaining": self.remaining,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PrivacyAccountant(total={self._total:.6g}, "
            f"spent={self.spent:.6g}, allocations={len(self._allocations)})"
        )


class SubBudget:
    """A named reservation handed out by a :class:`PrivacyAccountant`.

    A sub-budget can be spent (fully or partially) or split further into
    child sub-budgets; every spend is recorded in the owning accountant's
    ledger under the sub-budget's stage path.
    """

    __slots__ = ("_accountant", "_path", "_epsilon", "_spent", "_child_allocated")

    def __init__(self, accountant: PrivacyAccountant, path: StagePath,
                 epsilon: float) -> None:
        self._accountant = accountant
        self._path = tuple(path)
        self._epsilon = float(epsilon)
        self._spent = 0.0
        self._child_allocated = 0.0

    @property
    def stage(self) -> str:
        """The sub-budget's own stage name (last path component)."""
        return self._path[-1]

    @property
    def path(self) -> StagePath:
        """Full stage path from the accountant's root."""
        return self._path

    @property
    def epsilon(self) -> float:
        """The reserved ε."""
        return self._epsilon

    @property
    def spent(self) -> float:
        """ε spent directly out of this reservation."""
        return self._spent

    @property
    def remaining(self) -> float:
        """ε still spendable from this reservation."""
        return max(0.0, self._epsilon - self._spent - self._child_allocated)

    def spend(self, epsilon: Optional[float] = None, label: Optional[str] = None
              ) -> float:
        """Spend ``epsilon`` (default: everything remaining) from the reservation.

        Returns the amount spent.  Raises
        :class:`~repro.privacy.budget.BudgetExceededError` when the request
        exceeds what remains (beyond a small numerical tolerance).
        """
        if epsilon is None:
            epsilon = self.remaining
            if epsilon <= 0:
                raise BudgetExceededError(
                    f"sub-budget {'.'.join(self._path)!r} is exhausted "
                    f"({self._epsilon:.6g} reserved, all committed)"
                )
        epsilon = check_epsilon(epsilon, "epsilon")
        committed = self._spent + self._child_allocated
        if committed + epsilon > self._epsilon * (1.0 + _OVERDRAFT_TOLERANCE):
            raise BudgetExceededError(
                f"spending {epsilon:.6g} would overdraw sub-budget "
                f"{'.'.join(self._path)!r}: {committed:.6g} of "
                f"{self._epsilon:.6g} already committed"
            )
        self._spent += epsilon
        path = self._path if label is None else self._path + (label,)
        self._accountant._record(path, epsilon)
        return epsilon

    def split(self, weights: Mapping[str, float]) -> Dict[str, "SubBudget"]:
        """Split the remaining reservation into named child sub-budgets."""
        shares = _proportional_shares(
            weights, self.remaining, f"sub-budget {'.'.join(self._path)!r}"
        )
        children: Dict[str, SubBudget] = {}
        for stage, share in shares.items():
            child = SubBudget(self._accountant, self._path + (stage,), share)
            self._accountant._register_child(child)
            self._child_allocated += child.epsilon
            children[stage] = child
        return children

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SubBudget({'.'.join(self._path)!r}, epsilon={self._epsilon:.6g}, "
            f"spent={self._spent:.6g})"
        )


#: What the DP learners accept as their ``epsilon`` argument.
EpsilonLike = Union[float, int, SubBudget]


def charge_epsilon(epsilon: EpsilonLike, label: Optional[str] = None) -> float:
    """Resolve an epsilon-like value into a float, booking accountant spends.

    A plain number is validated and returned unchanged (no accounting — the
    caller owns the composition argument).  A :class:`SubBudget` is spent in
    full and the expenditure lands in the owning accountant's ledger; the
    optional ``label`` extends the recorded stage path.
    """
    if isinstance(epsilon, SubBudget):
        return epsilon.spend(label=label)
    return check_epsilon(epsilon)
