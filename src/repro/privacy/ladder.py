"""Differentially private triangle counting.

TriCycLe needs the number of triangles in the input graph.  The paper
(Appendix C.3.2) uses the Ladder framework of Zhang et al. (SIGMOD 2015),
which combines *local sensitivity at distance t* with the exponential
mechanism to release a subgraph count under pure ε-differential privacy.

This module provides three estimators:

* :func:`ladder_triangle_count` — the Ladder mechanism (the paper's choice);
* :func:`smooth_sensitivity_triangle_count` — an (ε, δ)-DP baseline using the
  smooth-sensitivity framework;
* :func:`naive_laplace_triangle_count` — the worst-case Laplace baseline with
  global sensitivity ``n - 2``.

Local sensitivity facts used below (edge-adjacency model): adding or removing
one edge ``{i, j}`` changes the triangle count by exactly the number of
common neighbours of ``i`` and ``j``; hence

* ``LS(G) = max_{i,j} |Γ(i) ∩ Γ(j)|`` (restricted to pairs at distance ≤ 2 —
  all other pairs have no common neighbours), and
* ``LS^{(t)}(G) ≤ min(LS(G) + t, n - 2)`` because one edge modification can
  increase any pair's common-neighbour count by at most one.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.graphs.attributed import AttributedGraph
from repro.graphs.statistics import max_common_neighbours, triangle_count
from repro.privacy.mechanisms import laplace_noise
from repro.privacy.sensitivity import (
    beta_for_smooth_sensitivity,
    smooth_sensitivity_laplace_noise,
)
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_epsilon


def triangle_local_sensitivity(graph: AttributedGraph) -> int:
    """Local sensitivity of the triangle count at ``graph``.

    Equal to the maximum number of common neighbours over all node pairs
    (capped at ``n - 2``); at least 1 so the downstream mechanisms always have
    a usable ladder step.
    """
    n = graph.num_nodes
    if n < 3:
        return 1
    return max(1, min(max_common_neighbours(graph), n - 2))


def local_sensitivity_at_distance(graph: AttributedGraph, t: int,
                                  base_ls: Optional[int] = None) -> int:
    """Upper bound on the local sensitivity of the triangle count at distance ``t``.

    Uses ``LS^{(t)}(G) <= min(LS(G) + t, n - 2)``: one edge change increases
    any single pair's common-neighbour count by at most one.
    """
    if t < 0:
        raise ValueError(f"t must be non-negative, got {t}")
    n = graph.num_nodes
    if base_ls is None:
        base_ls = triangle_local_sensitivity(graph)
    cap = max(1, n - 2)
    return int(min(base_ls + t, cap))


def ladder_triangle_count(graph: AttributedGraph, epsilon: float,
                          rng: RngLike = None,
                          max_rungs: Optional[int] = None,
                          exact_count: Optional[int] = None,
                          base_ls: Optional[int] = None) -> int:
    """Release the triangle count via the Ladder framework (pure ε-DP).

    The mechanism is an instance of the exponential mechanism over the
    integers: the quality of an output ``r`` is ``-t`` where ``t`` is the
    index of the ladder rung containing ``r``.  Rung 0 is the true count
    ``c``; rung ``t >= 1`` contains the ``2 · I_t`` integers that are between
    ``c ± (I_1 + … + I_{t-1})`` (exclusive) and ``c ± (I_1 + … + I_t)``
    (inclusive), where ``I_t = LS^{(t-1)}(G)`` is the ladder (rung length)
    function.  Because the ladder function is an upper bound on how far the
    true count can move between graphs at distance ``t``, the quality
    function has sensitivity 1 and the construction satisfies ε-DP
    (Zhang et al., Theorem 4.4).

    Parameters
    ----------
    graph:
        The input graph.
    epsilon:
        Privacy budget for this release.
    rng:
        Seed or generator.
    max_rungs:
        Optional cap on the number of rungs considered; by default enough
        rungs are used that the truncated tail mass is below ``1e-12``.
    exact_count / base_ls:
        Optional precomputed ``triangle_count(graph)`` and
        :func:`triangle_local_sensitivity` values.  Callers issuing many
        releases on the same graph (the ablation sweeps) hoist the two
        exact measurements out of their loops; results and randomness
        consumption are unchanged.

    Returns
    -------
    int
        A non-negative integer estimate of the triangle count.
    """
    epsilon = check_epsilon(epsilon)
    generator = ensure_rng(rng)

    true_count = triangle_count(graph) if exact_count is None else int(exact_count)
    if base_ls is None:
        base_ls = triangle_local_sensitivity(graph)
    n = graph.num_nodes

    # Decide how many rungs we need: each additional rung is weighted by
    # exp(-epsilon * t / 2); stop once the remaining mass is negligible.
    if max_rungs is None:
        # Tail of a geometric-like series; 80/epsilon rungs push the factor
        # below e^-40 ~ 4e-18 while staying small for reasonable epsilon.
        max_rungs = int(math.ceil(80.0 / epsilon)) + 1
    max_rungs = max(1, min(max_rungs, 2_000_000))

    rung_lengths = np.empty(max_rungs, dtype=np.int64)
    for t in range(max_rungs):
        rung_lengths[t] = local_sensitivity_at_distance(graph, t, base_ls=base_ls)

    # Weight of rung 0 is exp(0) for the single integer c; rung t >= 1 has
    # 2 * I_t integers each with weight exp(-epsilon * t / 2).
    t_values = np.arange(1, max_rungs + 1, dtype=float)
    log_weights = -epsilon * t_values / 2.0
    rung_sizes = 2.0 * rung_lengths.astype(float)
    weights = np.concatenate(([1.0], rung_sizes * np.exp(log_weights)))
    probabilities = weights / weights.sum()

    rung = int(generator.choice(weights.size, p=probabilities))
    if rung == 0:
        estimate = true_count
    else:
        # Uniformly choose one of the integers in the selected rung: offset
        # from the true count by (sum of previous rung lengths) + 1 .. + I_t,
        # on a uniformly chosen side.
        previous = int(rung_lengths[: rung - 1].sum())
        within = int(generator.integers(1, int(rung_lengths[rung - 1]) + 1))
        offset = previous + within
        sign = 1 if generator.random() < 0.5 else -1
        estimate = true_count + sign * offset

    max_possible = n * (n - 1) * (n - 2) // 6 if n >= 3 else 0
    return int(min(max(estimate, 0), max_possible if max_possible else 0))


def smooth_sensitivity_triangle_count(graph: AttributedGraph, epsilon: float,
                                      delta: float = 1e-6,
                                      rng: RngLike = None,
                                      exact_count: Optional[int] = None,
                                      base_ls: Optional[int] = None) -> int:
    """(ε, δ)-DP triangle count using the smooth-sensitivity framework.

    The β-smooth sensitivity is ``max_t e^{-βt} · min(LS(G) + t, n - 2)`` with
    ``β = ε / (2 ln(1/δ))``; Laplace noise of scale ``2S/ε`` is added to the
    exact count.  ``exact_count`` / ``base_ls`` optionally supply the two
    exact measurements (see :func:`ladder_triangle_count`).
    """
    epsilon = check_epsilon(epsilon)
    beta = beta_for_smooth_sensitivity(epsilon, delta)
    if base_ls is None:
        base_ls = triangle_local_sensitivity(graph)
    base_ls = float(base_ls)
    cap = float(max(1, graph.num_nodes - 2))

    # max over t of e^{-beta t} * min(base + t, cap); unimodal, scan until
    # the capped branch starts decreasing.
    best = base_ls
    t = 1
    previous = best
    while True:
        value = math.exp(-beta * t) * min(base_ls + t, cap)
        best = max(best, value)
        if value < previous and (base_ls + t >= cap or t > 1.0 / beta + 1):
            break
        previous = value
        t += 1
        if t > 10_000_000:  # pragma: no cover - defensive guard
            break

    true_count = triangle_count(graph) if exact_count is None else int(exact_count)
    noisy = true_count + smooth_sensitivity_laplace_noise(
        best, epsilon, rng=rng
    )
    return int(max(0, round(float(noisy))))


def naive_laplace_triangle_count(graph: AttributedGraph, epsilon: float,
                                 rng: RngLike = None,
                                 exact_count: Optional[int] = None) -> int:
    """Baseline: Laplace mechanism with the worst-case global sensitivity ``n - 2``."""
    epsilon = check_epsilon(epsilon)
    sensitivity = max(1, graph.num_nodes - 2)
    true_count = triangle_count(graph) if exact_count is None else int(exact_count)
    noisy = true_count + laplace_noise(sensitivity / epsilon, rng=rng)
    return int(max(0, round(float(noisy))))
