"""Privacy budget accounting.

Differential privacy composes: running mechanisms with parameters
``epsilon_1 .. epsilon_k`` sequentially on the same data yields
``sum(epsilon_i)``-DP, running them on disjoint data yields
``max(epsilon_i)``-DP, and post-processing is free (Section 2.3).
:class:`PrivacyBudget` makes that arithmetic explicit: the AGM-DP workflow
charges every parameter-learning step against a budget object and refuses to
overspend, which both documents and enforces the accounting in Theorem 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.utils.validation import check_epsilon


class BudgetExceededError(RuntimeError):
    """Raised when a mechanism would spend more privacy budget than remains."""


@dataclass
class _Charge:
    """A single recorded expenditure against the budget."""

    label: str
    epsilon: float


@dataclass
class PrivacyBudget:
    """Tracks ε spent under sequential composition.

    Parameters
    ----------
    total_epsilon:
        The overall privacy parameter for the release.

    Examples
    --------
    >>> budget = PrivacyBudget(1.0)
    >>> budget.spend(0.25, "attributes")
    0.25
    >>> budget.remaining
    0.75
    """

    total_epsilon: float
    _charges: List[_Charge] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self.total_epsilon = check_epsilon(self.total_epsilon, "total_epsilon")

    @property
    def spent(self) -> float:
        """Total ε spent so far."""
        return float(sum(charge.epsilon for charge in self._charges))

    @property
    def remaining(self) -> float:
        """ε still available (never negative)."""
        return max(0.0, self.total_epsilon - self.spent)

    def spend(self, epsilon: float, label: str = "") -> float:
        """Record an expenditure of ``epsilon``; returns the amount spent.

        Raises
        ------
        BudgetExceededError
            If the expenditure would push the total spend above the budget
            (beyond a small numerical tolerance).
        """
        epsilon = check_epsilon(epsilon, "epsilon")
        if self.spent + epsilon > self.total_epsilon * (1.0 + 1e-9):
            raise BudgetExceededError(
                f"spending {epsilon:.6g} would exceed the budget: "
                f"{self.spent:.6g} of {self.total_epsilon:.6g} already spent"
            )
        self._charges.append(_Charge(label=label, epsilon=epsilon))
        return epsilon

    def ledger(self) -> List[Tuple[str, float]]:
        """Return the list of ``(label, epsilon)`` charges in order."""
        return [(charge.label, charge.epsilon) for charge in self._charges]

    def summary(self) -> Dict[str, float]:
        """Return spend per label (labels aggregated)."""
        totals: Dict[str, float] = {}
        for charge in self._charges:
            totals[charge.label] = totals.get(charge.label, 0.0) + charge.epsilon
        return totals


def split_budget(total_epsilon: float, weights: Dict[str, float]) -> Dict[str, float]:
    """Split ``total_epsilon`` among named components proportionally to ``weights``.

    This implements the SplitBudget step of Algorithm 3.  The paper's default
    for the TriCycLe backend is an even four-way split (attributes,
    correlations, degree sequence, triangle count); the FCL backend gives half
    to the degree sequence.  Any non-negative weights (not all zero) work.
    """
    total_epsilon = check_epsilon(total_epsilon, "total_epsilon")
    if not weights:
        raise ValueError("weights must not be empty")
    weight_sum = float(sum(weights.values()))
    if weight_sum <= 0 or any(w < 0 for w in weights.values()):
        raise ValueError("weights must be non-negative and sum to a positive value")
    return {
        name: total_epsilon * (weight / weight_sum) for name, weight in weights.items()
    }
