"""Differential-privacy primitives.

Implements the building blocks the paper composes:

* the Laplace, geometric and exponential mechanisms (Section 2.3);
* privacy-budget accounting through sequential / parallel composition;
* the smooth-sensitivity framework of Nissim et al. (Appendix B.1);
* the constrained-inference degree-sequence estimator of Hay et al.
  (Appendix C.3.1);
* the Ladder framework of Zhang et al. for subgraph (triangle) counting
  (Appendix C.3.2).
"""

from repro.privacy.accountant import (
    PrivacyAccountant,
    SubBudget,
    charge_epsilon,
)
from repro.privacy.budget import BudgetExceededError, PrivacyBudget, split_budget
from repro.privacy.mechanisms import (
    clamp,
    exponential_mechanism,
    geometric_mechanism,
    laplace_mechanism,
    laplace_noise,
)
from repro.privacy.sensitivity import (
    smooth_sensitivity_degree_bounded,
    smooth_sensitivity_laplace_noise,
    beta_for_smooth_sensitivity,
)
from repro.privacy.constrained_inference import (
    constrained_inference,
    private_degree_sequence,
)
from repro.privacy.ladder import (
    ladder_triangle_count,
    naive_laplace_triangle_count,
    smooth_sensitivity_triangle_count,
    triangle_local_sensitivity,
)

__all__ = [
    "PrivacyAccountant",
    "SubBudget",
    "charge_epsilon",
    "PrivacyBudget",
    "BudgetExceededError",
    "split_budget",
    "laplace_noise",
    "laplace_mechanism",
    "geometric_mechanism",
    "exponential_mechanism",
    "clamp",
    "smooth_sensitivity_degree_bounded",
    "smooth_sensitivity_laplace_noise",
    "beta_for_smooth_sensitivity",
    "constrained_inference",
    "private_degree_sequence",
    "ladder_triangle_count",
    "naive_laplace_triangle_count",
    "smooth_sensitivity_triangle_count",
    "triangle_local_sensitivity",
]
