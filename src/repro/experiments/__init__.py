"""Experiment drivers that regenerate the paper's tables and figures.

Each driver returns plain data structures (lists of dictionaries) so it can
be used by the benchmark harness, the examples and the CLI alike.  Trial
counts default to small values appropriate for a laptop run and can be raised
through the ``REPRO_TRIALS`` environment variable to approach the paper's
Monte-Carlo precision.
"""

from repro.experiments.runner import (
    ExperimentConfig,
    TrialsResult,
    default_trials,
    default_workers,
    run_agm_trials,
    run_agm_dp_trials,
    run_trials,
    run_trials_detailed,
)
from repro.experiments.tables import (
    dataset_properties_table,
    format_table,
    results_table,
)
from repro.experiments.figures import (
    figure1_truncation_heuristic,
    figure2_degree_distributions,
    figure3_clustering_distributions,
    figure5_correlation_methods,
)
from repro.experiments.ablations import (
    ablation_budget_split,
    ablation_triangle_estimators,
    ablation_truncation_parameter,
)

__all__ = [
    "ExperimentConfig",
    "TrialsResult",
    "default_trials",
    "default_workers",
    "run_agm_trials",
    "run_agm_dp_trials",
    "run_trials",
    "run_trials_detailed",
    "results_table",
    "dataset_properties_table",
    "format_table",
    "figure1_truncation_heuristic",
    "figure2_degree_distributions",
    "figure3_clustering_distributions",
    "figure5_correlation_methods",
    "ablation_budget_split",
    "ablation_truncation_parameter",
    "ablation_triangle_estimators",
]
