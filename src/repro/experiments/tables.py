"""Drivers for the paper's result tables.

* :func:`results_table` regenerates Tables 2-5: for one dataset, the full
  metric row for the non-private AGM-FCL / AGM-TriCL baselines and for
  AGMDP-FCL / AGMDP-TriCL at every privacy budget the paper tests.
* :func:`dataset_properties_table` regenerates Table 6 (dataset summary
  statistics), reporting the paper's published values next to the statistics
  of the generated stand-in graphs.
* :func:`format_table` renders any list of row dictionaries as a plain-text
  table for benchmark output and the CLI.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.datasets.registry import get_dataset_spec
from repro.experiments.runner import ExperimentConfig, default_trials, run_trials
from repro.graphs.attributed import AttributedGraph
from repro.graphs.statistics import summary
from repro.utils.rng import RngLike, ensure_rng

Row = Dict[str, object]


def results_table(dataset: str, epsilons: Optional[Sequence[float]] = None,
                  trials: Optional[int] = None, scale: Optional[float] = None,
                  seed: RngLike = 0,
                  include_non_private: bool = True,
                  backends: Sequence[str] = ("fcl", "tricycle"),
                  num_iterations: int = 2,
                  graph: Optional[AttributedGraph] = None) -> List[Row]:
    """Regenerate one of Tables 2-5 for ``dataset``.

    Parameters
    ----------
    dataset:
        Registry name (``"lastfm"``, ``"petster"``, ``"epinions"``, ``"pokec"``).
    epsilons:
        Privacy budgets to evaluate; defaults to the budgets the paper uses
        for this dataset.
    trials:
        Monte-Carlo trials per cell (default: :func:`default_trials`).
    scale:
        Dataset generation scale (default: the registry's bench scale).
    seed:
        Seed for dataset generation and all trials.
    include_non_private:
        Include the AGM-FCL / AGM-TriCL reference rows.
    backends:
        Structural backends to evaluate.
    graph:
        Optional pre-generated input graph (used by tests to keep runtimes
        small); when given, ``dataset``/``scale`` only affect labelling.

    Returns
    -------
    list of dict
        One row per (model, ε) cell with keys ``model``, ``epsilon`` and the
        paper's metric columns.
    """
    spec = get_dataset_spec(dataset)
    rng = ensure_rng(seed)
    if graph is None:
        graph = spec.load(scale=scale, seed=rng)
    if epsilons is None:
        epsilons = spec.table_epsilons
    trial_count = default_trials(trials)

    rows: List[Row] = []
    if include_non_private:
        for backend in backends:
            config = ExperimentConfig(
                backend=backend, epsilon=None, trials=trial_count,
                num_iterations=num_iterations,
            )
            report = run_trials(graph, config, rng=rng)
            rows.append({"model": config.label, "epsilon": None,
                         **report.as_paper_row()})
    for epsilon in epsilons:
        for backend in backends:
            config = ExperimentConfig(
                backend=backend, epsilon=float(epsilon), trials=trial_count,
                num_iterations=num_iterations,
            )
            report = run_trials(graph, config, rng=rng)
            rows.append({"model": config.label, "epsilon": float(epsilon),
                         **report.as_paper_row()})
    return rows


def dataset_properties_table(datasets: Optional[Sequence[str]] = None,
                             scale: Optional[float] = None,
                             seed: RngLike = 0) -> List[Row]:
    """Regenerate Table 6: summary statistics of every dataset.

    Each row reports the paper's published statistics for the real dataset
    and the measured statistics of the generated stand-in at the requested
    scale, so the fidelity of the substitution is visible at a glance.
    """
    from repro.datasets.registry import dataset_names

    names = list(datasets) if datasets else dataset_names()
    rng = ensure_rng(seed)
    rows: List[Row] = []
    for name in names:
        spec = get_dataset_spec(name)
        graph = spec.load(scale=scale, seed=rng)
        stats = summary(graph)
        rows.append({
            "dataset": name,
            "n (paper)": spec.paper.num_nodes,
            "n (generated)": stats.num_nodes,
            "m (paper)": spec.paper.num_edges,
            "m (generated)": stats.num_edges,
            "d_max (paper)": spec.paper.max_degree,
            "d_max (generated)": stats.max_degree,
            "d_avg (paper)": spec.paper.average_degree,
            "d_avg (generated)": round(stats.average_degree, 2),
            "n_tri (paper)": spec.paper.num_triangles,
            "n_tri (generated)": stats.num_triangles,
            "C_avg (paper)": spec.paper.average_clustering,
            "C_avg (generated)": round(stats.average_clustering, 3),
        })
    return rows


def format_table(rows: Sequence[Row], float_format: str = "{:.4f}") -> str:
    """Render a list of row dictionaries as an aligned plain-text table."""
    if not rows:
        return "(empty table)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def render(value: object) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in rendered
    ]
    return "\n".join([header, separator, *body])
