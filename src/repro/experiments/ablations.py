"""Ablation studies for the design choices the paper leaves open.

* :func:`ablation_budget_split` — Section 4 notes that the even budget split
  "seems to work well in practice; though other strategies could also be
  used".  This ablation compares the even split with structure-heavy and
  correlation-heavy alternatives.
* :func:`ablation_truncation_parameter` — sweeps the truncation parameter
  ``k`` around the ``n^(1/3)`` heuristic (complementing Figure 1).
* :func:`ablation_triangle_estimators` — compares the Ladder mechanism with
  the smooth-sensitivity and naive-Laplace triangle-count estimators
  (Appendix C.3.2 argues Ladder is the state of the art).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.agm_dp import BudgetSplit
from repro.datasets.registry import get_dataset_spec
from repro.experiments.runner import ExperimentConfig, default_trials, run_trials
from repro.graphs.attributed import AttributedGraph
from repro.graphs.statistics import triangle_count
from repro.graphs.truncation import default_truncation_parameter
from repro.metrics.distributions import mean_absolute_error, relative_error
from repro.params.correlations import connection_probabilities, learn_correlations_dp
from repro.privacy.ladder import (
    ladder_triangle_count,
    naive_laplace_triangle_count,
    smooth_sensitivity_triangle_count,
    triangle_local_sensitivity,
)
from repro.utils.rng import RngLike, ensure_rng

Row = Dict[str, object]

#: Budget-split strategies compared by the ablation.
BUDGET_SPLIT_STRATEGIES: Dict[str, BudgetSplit] = {
    "even": BudgetSplit(attributes=0.25, correlations=0.25, structural=0.5),
    "structure-heavy": BudgetSplit(attributes=0.15, correlations=0.15, structural=0.7),
    "correlation-heavy": BudgetSplit(attributes=0.2, correlations=0.5, structural=0.3),
}


def _load_graph(dataset: str, scale: Optional[float], seed: RngLike,
                graph: Optional[AttributedGraph]) -> AttributedGraph:
    if graph is not None:
        return graph
    return get_dataset_spec(dataset).load(scale=scale, seed=seed)


def ablation_budget_split(dataset: str, epsilon: float = 0.5,
                          trials: Optional[int] = None,
                          scale: Optional[float] = None, seed: RngLike = 0,
                          backend: str = "tricycle",
                          graph: Optional[AttributedGraph] = None) -> List[Row]:
    """Compare budget-split strategies at a fixed overall ε."""
    rng = ensure_rng(seed)
    graph = _load_graph(dataset, scale, rng, graph)
    trial_count = default_trials(trials)

    rows: List[Row] = []
    for strategy, split in BUDGET_SPLIT_STRATEGIES.items():
        config = ExperimentConfig(
            backend=backend, epsilon=float(epsilon), trials=trial_count,
            budget_split=split,
        )
        report = run_trials(graph, config, rng=rng)
        rows.append({
            "dataset": dataset, "strategy": strategy, "epsilon": float(epsilon),
            **report.as_paper_row(),
        })
    return rows


def ablation_truncation_parameter(dataset: str, epsilon: float = 0.5,
                                  factors: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
                                  trials: Optional[int] = None,
                                  scale: Optional[float] = None,
                                  seed: RngLike = 0,
                                  graph: Optional[AttributedGraph] = None
                                  ) -> List[Row]:
    """Sweep the truncation parameter ``k`` as multiples of the ``n^(1/3)`` heuristic."""
    rng = ensure_rng(seed)
    graph = _load_graph(dataset, scale, rng, graph)
    trial_count = default_trials(trials)
    exact = connection_probabilities(graph)
    heuristic_k = default_truncation_parameter(graph.num_nodes)

    rows: List[Row] = []
    for factor in factors:
        k = max(2, int(round(heuristic_k * factor)))
        errors = [
            mean_absolute_error(
                exact,
                learn_correlations_dp(graph, epsilon, truncation_k=k, rng=rng)
                .probabilities,
            )
            for _ in range(trial_count)
        ]
        rows.append({
            "dataset": dataset, "epsilon": float(epsilon), "k": k,
            "k_over_heuristic": float(factor), "mae": float(np.mean(errors)),
        })
    return rows


def ablation_triangle_estimators(dataset: str,
                                 epsilons: Sequence[float] = (0.1, 0.25, 0.5, 1.0),
                                 trials: Optional[int] = None,
                                 scale: Optional[float] = None,
                                 seed: RngLike = 0,
                                 graph: Optional[AttributedGraph] = None
                                 ) -> List[Row]:
    """Relative error of the DP triangle-count estimators across ε."""
    rng = ensure_rng(seed)
    graph = _load_graph(dataset, scale, rng, graph)
    trial_count = default_trials(trials)
    # Hoist the two exact measurements out of the ε × mechanism × trial
    # loops: the graph never changes, so every estimator call reuses the
    # same triangle count and local sensitivity (identical releases — the
    # randomness consumption per call is unchanged).
    exact = triangle_count(graph)
    base_ls = triangle_local_sensitivity(graph)

    estimators = {
        "Ladder": lambda *args, **kw: ladder_triangle_count(
            *args, exact_count=exact, base_ls=base_ls, **kw),
        "SmoothSensitivity": lambda *args, **kw: smooth_sensitivity_triangle_count(
            *args, exact_count=exact, base_ls=base_ls, **kw),
        "NaiveLaplace": lambda *args, **kw: naive_laplace_triangle_count(
            *args, exact_count=exact, **kw),
    }
    rows: List[Row] = []
    for epsilon in epsilons:
        for name, estimator in estimators.items():
            errors = [
                relative_error(exact, estimator(graph, float(epsilon), rng=rng))
                for _ in range(trial_count)
            ]
            rows.append({
                "dataset": dataset, "epsilon": float(epsilon), "estimator": name,
                "relative_error": float(np.mean(errors)),
            })
    return rows
