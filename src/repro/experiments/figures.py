"""Drivers for the paper's figures.

* Figure 1 — MAE of the EdgeTruncation Θ_F estimator when using the best
  truncation parameter ``k`` versus the data-independent heuristic
  ``k = n^(1/3)``, across privacy budgets.
* Figures 2 and 3 — degree-distribution and local-clustering-coefficient
  CCDFs of the non-private structural models (FCL, TCL, TriCycLe) against
  the input graph.
* Figure 5 — MAE of the four Θ_F estimators (EdgeTruncation, smooth
  sensitivity, sample-and-aggregate, naive Laplace) across privacy budgets.

All drivers return plain lists of dictionaries (one per plotted point or
series) so benches can print them and downstream users can plot them with
any tool.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.registry import get_dataset_spec
from repro.experiments.runner import default_trials
from repro.graphs.attributed import AttributedGraph
from repro.graphs.statistics import clustering_ccdf, degree_ccdf
from repro.graphs.truncation import default_truncation_parameter
from repro.metrics.distributions import mean_absolute_error
from repro.models.chung_lu import ChungLuModel
from repro.models.tcl import TclModel, estimate_transitive_closure_probability
from repro.models.tricycle import TriCycLeModel
from repro.params.correlations import (
    connection_probabilities,
    learn_correlations_dp,
    learn_correlations_naive_laplace,
    learn_correlations_sample_aggregate,
    learn_correlations_smooth,
)
from repro.params.structural import fit_tricycle
from repro.utils.rng import RngLike, ensure_rng

Row = Dict[str, object]

#: The ε grid of Figures 1 and 5.
FIGURE_EPSILONS = (0.1, 0.2, 0.3, 0.5, 1.0)


def _load_graph(dataset: str, scale: Optional[float], seed: RngLike,
                graph: Optional[AttributedGraph]) -> AttributedGraph:
    """Resolve the input graph for a figure driver."""
    if graph is not None:
        return graph
    spec = get_dataset_spec(dataset)
    return spec.load(scale=scale, seed=seed)


# ----------------------------------------------------------------------
# Figure 1: truncation parameter heuristic
# ----------------------------------------------------------------------
def figure1_truncation_heuristic(dataset: str,
                                 epsilons: Sequence[float] = FIGURE_EPSILONS,
                                 candidate_ks: Optional[Sequence[int]] = None,
                                 trials: Optional[int] = None,
                                 scale: Optional[float] = None,
                                 seed: RngLike = 0,
                                 graph: Optional[AttributedGraph] = None
                                 ) -> List[Row]:
    """MAE of Θ̃_F with the best k versus the ``n^(1/3)`` heuristic (Figure 1)."""
    rng = ensure_rng(seed)
    graph = _load_graph(dataset, scale, rng, graph)
    trial_count = default_trials(trials)
    exact = connection_probabilities(graph)
    heuristic_k = default_truncation_parameter(graph.num_nodes)
    if candidate_ks is None:
        # A geometric sweep around the heuristic, capped at the max degree.
        d_max = int(graph.degrees().max()) if graph.num_nodes else 2
        candidate_ks = sorted({
            max(2, int(round(heuristic_k * factor)))
            for factor in (0.25, 0.5, 1.0, 2.0, 4.0)
        } | {max(2, d_max)})

    rows: List[Row] = []
    for epsilon in epsilons:
        errors_by_k = {}
        for k in candidate_ks:
            errors = [
                mean_absolute_error(
                    exact,
                    learn_correlations_dp(
                        graph, epsilon, truncation_k=int(k), rng=rng
                    ).probabilities,
                )
                for _ in range(trial_count)
            ]
            errors_by_k[int(k)] = float(np.mean(errors))
        heuristic_errors = [
            mean_absolute_error(
                exact,
                learn_correlations_dp(
                    graph, epsilon, truncation_k=heuristic_k, rng=rng
                ).probabilities,
            )
            for _ in range(trial_count)
        ]
        best_k = min(errors_by_k, key=errors_by_k.get)
        rows.append({
            "dataset": dataset,
            "epsilon": float(epsilon),
            "best_k": best_k,
            "mae_best_k": errors_by_k[best_k],
            "heuristic_k": heuristic_k,
            "mae_heuristic_k": float(np.mean(heuristic_errors)),
        })
    return rows


# ----------------------------------------------------------------------
# Figures 2 and 3: structural model comparison
# ----------------------------------------------------------------------
def _structural_models(graph: AttributedGraph) -> Dict[str, Callable[[], object]]:
    """Build the three non-private structural models fitted to ``graph``."""
    params = fit_tricycle(graph)
    rho = estimate_transitive_closure_probability(graph)
    return {
        "FCL": lambda: ChungLuModel(params.degrees, bias_correction=True),
        "TCL": lambda: TclModel(params.degrees, rho=rho),
        "TriCycLe": lambda: TriCycLeModel(
            params.degrees, num_triangles=params.num_triangles
        ),
    }


def figure2_degree_distributions(dataset: str, scale: Optional[float] = None,
                                 seed: RngLike = 0,
                                 graph: Optional[AttributedGraph] = None
                                 ) -> List[Row]:
    """Degree-distribution CCDF of the input and of each structural model (Figure 2)."""
    rng = ensure_rng(seed)
    graph = _load_graph(dataset, scale, rng, graph)
    rows: List[Row] = [{
        "dataset": dataset, "model": "input", "ccdf": degree_ccdf(graph),
    }]
    for name, factory in _structural_models(graph).items():
        synthetic = factory().generate(num_nodes=graph.num_nodes, rng=rng)
        rows.append({
            "dataset": dataset, "model": name, "ccdf": degree_ccdf(synthetic),
        })
    return rows


def figure3_clustering_distributions(dataset: str, scale: Optional[float] = None,
                                     seed: RngLike = 0,
                                     graph: Optional[AttributedGraph] = None
                                     ) -> List[Row]:
    """Local clustering-coefficient CCDF of the input and of each model (Figure 3)."""
    rng = ensure_rng(seed)
    graph = _load_graph(dataset, scale, rng, graph)
    rows: List[Row] = [{
        "dataset": dataset, "model": "input", "ccdf": clustering_ccdf(graph),
    }]
    for name, factory in _structural_models(graph).items():
        synthetic = factory().generate(num_nodes=graph.num_nodes, rng=rng)
        rows.append({
            "dataset": dataset, "model": name, "ccdf": clustering_ccdf(synthetic),
        })
    return rows


# ----------------------------------------------------------------------
# Figure 5: comparison of Θ_F estimators
# ----------------------------------------------------------------------
#: The estimators compared in Figure 5, keyed by their legend labels.
CORRELATION_METHODS = {
    "EdgeTruncation": lambda graph, epsilon, rng: learn_correlations_dp(
        graph, epsilon, rng=rng
    ),
    "Smooth": lambda graph, epsilon, rng: learn_correlations_smooth(
        graph, epsilon, rng=rng
    ),
    "S&A": lambda graph, epsilon, rng: learn_correlations_sample_aggregate(
        graph, epsilon, rng=rng
    ),
    "Laplace (baseline)": lambda graph, epsilon, rng: learn_correlations_naive_laplace(
        graph, epsilon, rng=rng
    ),
}


def figure5_correlation_methods(dataset: str,
                                epsilons: Sequence[float] = FIGURE_EPSILONS,
                                trials: Optional[int] = None,
                                scale: Optional[float] = None,
                                seed: RngLike = 0,
                                graph: Optional[AttributedGraph] = None
                                ) -> List[Row]:
    """MAE of the four Θ_F estimators across privacy budgets (Figure 5)."""
    rng = ensure_rng(seed)
    graph = _load_graph(dataset, scale, rng, graph)
    trial_count = default_trials(trials)
    exact = connection_probabilities(graph)

    rows: List[Row] = []
    for epsilon in epsilons:
        for method, estimator in CORRELATION_METHODS.items():
            errors = [
                mean_absolute_error(
                    exact, estimator(graph, float(epsilon), rng).probabilities
                )
                for _ in range(trial_count)
            ]
            rows.append({
                "dataset": dataset,
                "epsilon": float(epsilon),
                "method": method,
                "mae": float(np.mean(errors)),
            })
    return rows
