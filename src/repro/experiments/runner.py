"""Monte-Carlo experiment runner shared by all tables and figures.

The paper reports averages over many synthetic graphs per configuration
(1 000 for the small datasets, 100 for the large ones).  The runner exposes
the same estimator with a configurable number of trials; the default is kept
small so the whole benchmark suite finishes quickly, and the ``REPRO_TRIALS``
environment variable raises it for full reproductions.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.core.agm import AgmSynthesizer, learn_agm
from repro.core.agm_dp import BudgetSplit, learn_agm_dp
from repro.graphs.attributed import AttributedGraph
from repro.metrics.evaluation import (
    EvaluationReport,
    average_reports,
    evaluate_synthetic_graph,
)
from repro.utils.rng import RngLike, ensure_rng

#: Environment variable overriding the number of Monte-Carlo trials.
TRIALS_ENV_VAR = "REPRO_TRIALS"

#: Default number of synthetic graphs averaged per configuration.
DEFAULT_TRIALS = 3


def default_trials(override: Optional[int] = None) -> int:
    """Resolve the trial count: explicit argument, environment variable, default."""
    if override is not None:
        if override < 1:
            raise ValueError(f"trials must be >= 1, got {override}")
        return int(override)
    env = os.environ.get(TRIALS_ENV_VAR)
    if env:
        return max(1, int(env))
    return DEFAULT_TRIALS


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration of one AGM(-DP) Monte-Carlo estimate.

    Attributes
    ----------
    backend:
        Structural backend, ``"tricycle"`` or ``"fcl"``.
    epsilon:
        Privacy budget, or ``None`` for the non-private baseline.
    trials:
        Number of synthetic graphs to average over.
    num_iterations:
        Acceptance-refinement rounds used when sampling.
    truncation_k:
        Truncation parameter for Θ_F (``None`` for the ``n^(1/3)`` heuristic).
    budget_split:
        Optional custom budget split for the DP variant.
    """

    backend: str = "tricycle"
    epsilon: Optional[float] = None
    trials: int = DEFAULT_TRIALS
    num_iterations: int = 2
    truncation_k: Optional[int] = None
    budget_split: Optional[BudgetSplit] = None

    @property
    def is_private(self) -> bool:
        """Whether this configuration uses the DP learners."""
        return self.epsilon is not None

    @property
    def label(self) -> str:
        """Human-readable label matching the paper's model names."""
        model = "TriCL" if self.backend == "tricycle" else "FCL"
        if self.is_private:
            return f"AGMDP-{model}"
        return f"AGM-{model}"


def run_agm_trials(graph: AttributedGraph, config: ExperimentConfig,
                   rng: RngLike = None) -> EvaluationReport:
    """Average the evaluation metrics of ``config.trials`` non-private samples."""
    generator = ensure_rng(rng)
    parameters = learn_agm(graph, backend=config.backend)
    synthesizer = AgmSynthesizer(parameters, num_iterations=config.num_iterations)
    reports = [
        evaluate_synthetic_graph(graph, synthesizer.sample(rng=generator))
        for _ in range(config.trials)
    ]
    return average_reports(reports)


def run_agm_dp_trials(graph: AttributedGraph, config: ExperimentConfig,
                      rng: RngLike = None) -> EvaluationReport:
    """Average the evaluation metrics of ``config.trials`` DP samples.

    Each trial refits the DP parameters (as the paper does), so the reported
    averages include the learning noise, not just the sampling noise.
    """
    if config.epsilon is None:
        raise ValueError("run_agm_dp_trials requires a configuration with epsilon set")
    generator = ensure_rng(rng)
    reports = []
    for _ in range(config.trials):
        parameters, _budget = learn_agm_dp(
            graph,
            config.epsilon,
            backend=config.backend,
            truncation_k=config.truncation_k,
            budget_split=config.budget_split,
            rng=generator,
        )
        synthesizer = AgmSynthesizer(parameters, num_iterations=config.num_iterations)
        reports.append(evaluate_synthetic_graph(graph, synthesizer.sample(rng=generator)))
    return average_reports(reports)


def run_trials(graph: AttributedGraph, config: ExperimentConfig,
               rng: RngLike = None) -> EvaluationReport:
    """Dispatch to the private or non-private runner based on the configuration."""
    if config.is_private:
        return run_agm_dp_trials(graph, config, rng=rng)
    return run_agm_trials(graph, config, rng=rng)
