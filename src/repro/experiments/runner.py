"""Parallel Monte-Carlo experiment runner shared by all tables and figures.

The paper reports averages over many synthetic graphs per configuration
(1 000 for the small datasets, 100 for the large ones).  The runner executes
one :class:`~repro.core.pipeline.SynthesisPipeline` per trial — refitting
the DP parameters every trial, as the paper does, so the averages include
the learning noise — and can fan the trials out over worker processes.

Determinism contract
--------------------
Trial ``i`` always runs on the ``i``-th random stream spawned from the root
seed (:func:`repro.utils.rng.spawn_streams`), and reports are averaged in
trial order.  The schedule therefore has **no effect on the numbers**: the
parallel runner is bit-identical to the serial one at the same seed, which
``tests/experiments/test_runner.py`` pins.

Trial counts default to small values appropriate for a laptop run; the
``REPRO_TRIALS`` environment variable raises them for full reproductions,
and ``REPRO_WORKERS`` sets the default worker-process count.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.agm_dp import BudgetSplit
from repro.core.pipeline import RunManifest, SynthesisPipeline
from repro.core.registry import get_backend
from repro.graphs.attributed import AttributedGraph
from repro.metrics.evaluation import EvaluationReport, average_reports
from repro.utils.rng import SeedLike, spawn_streams

#: Environment variable overriding the number of Monte-Carlo trials.
TRIALS_ENV_VAR = "REPRO_TRIALS"

#: Environment variable overriding the number of worker processes.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Default number of synthetic graphs averaged per configuration.
DEFAULT_TRIALS = 3


def default_trials(override: Optional[int] = None) -> int:
    """Resolve the trial count: explicit argument, environment variable, default."""
    if override is not None:
        if override < 1:
            raise ValueError(f"trials must be >= 1, got {override}")
        return int(override)
    env = os.environ.get(TRIALS_ENV_VAR)
    if env:
        return max(1, int(env))
    return DEFAULT_TRIALS


def default_workers(override: Optional[int] = None) -> int:
    """Resolve the worker count: explicit argument, environment variable, serial."""
    if override is not None:
        if override < 1:
            raise ValueError(f"workers must be >= 1, got {override}")
        return int(override)
    env = os.environ.get(WORKERS_ENV_VAR)
    if env:
        return max(1, int(env))
    return 1


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration of one AGM(-DP) Monte-Carlo estimate.

    Attributes
    ----------
    backend:
        A registered structural backend name (``"tricycle"``, ``"fcl"``, ...).
    epsilon:
        Privacy budget, or ``None`` for the non-private baseline.
    trials:
        Number of synthetic graphs to average over.
    num_iterations:
        Acceptance-refinement rounds used when sampling.
    truncation_k:
        Truncation parameter for Θ_F (``None`` for the ``n^(1/3)`` heuristic).
    budget_split:
        Optional custom budget split for the DP variant.
    workers:
        Worker processes for the Monte-Carlo fan-out (``None``: the
        ``REPRO_WORKERS`` environment variable, else serial; an explicit
        ``1`` pins the run serial regardless of the environment).  The
        numbers are identical either way.
    """

    backend: str = "tricycle"
    epsilon: Optional[float] = None
    trials: int = DEFAULT_TRIALS
    num_iterations: int = 2
    truncation_k: Optional[int] = None
    budget_split: Optional[BudgetSplit] = None
    workers: Optional[int] = None

    @classmethod
    def from_spec(cls, spec) -> "ExperimentConfig":
        """The configuration a :class:`repro.api.ReleaseSpec` describes.

        This is the runner's half of the thin-client contract: all config
        parsing, defaulting and validation happens in the spec; the runner
        only reads the already-validated fields (duck-typed, so the runner
        keeps no import dependency on :mod:`repro.api`).
        """
        return cls(
            backend=spec.backend,
            epsilon=spec.epsilon,
            trials=spec.trials,
            num_iterations=spec.num_iterations,
            truncation_k=spec.truncation_k,
            budget_split=spec.budget_split,
            workers=spec.workers,
        )

    @property
    def is_private(self) -> bool:
        """Whether this configuration uses the DP learners."""
        return self.epsilon is not None

    @property
    def label(self) -> str:
        """Human-readable label matching the paper's model names."""
        model = get_backend(self.backend).label
        if self.is_private:
            return f"AGMDP-{model}"
        return f"AGM-{model}"

    def build_pipeline(self, parameters=None) -> SynthesisPipeline:
        """The per-trial synthesis pipeline this configuration describes.

        ``parameters`` optionally injects prefit (exact) AGM parameters so
        the fit stage is skipped — used by the non-private runner, which
        fits once and samples per trial.
        """
        return SynthesisPipeline(
            epsilon=self.epsilon,
            backend=self.backend,
            truncation_k=self.truncation_k,
            budget_split=self.budget_split,
            num_iterations=self.num_iterations,
            samples=1,
            evaluate=True,
            parameters=parameters,
        )


@dataclass
class TrialsResult:
    """Everything a Monte-Carlo estimate produced, beyond the averaged report."""

    report: EvaluationReport
    trial_reports: List[EvaluationReport]
    manifests: List[RunManifest] = field(default_factory=list)
    workers: int = 1

    @property
    def trials(self) -> int:
        """Number of Monte-Carlo trials executed."""
        return len(self.trial_reports)

    @property
    def manifest(self) -> Optional[RunManifest]:
        """The first trial's manifest (splits and spends are trial-invariant)."""
        return self.manifests[0] if self.manifests else None

    def spend_summary(self) -> Dict[str, float]:
        """Average per-stage ε spend across trials (empty for non-private runs)."""
        totals: Dict[str, float] = {}
        for manifest in self.manifests:
            for stage, spent in manifest.spends.items():
                totals[stage] = totals.get(stage, 0.0) + spent
        count = max(1, len(self.manifests))
        return {stage: spent / count for stage, spent in totals.items()}


def _run_one_trial(graph: AttributedGraph, config: ExperimentConfig,
                   stream, parameters=None
                   ) -> "tuple[EvaluationReport, RunManifest]":
    """Execute a single Monte-Carlo trial on its dedicated random stream."""
    result = config.build_pipeline(parameters=parameters).run(graph, rng=stream)
    assert result.report is not None  # evaluate=True above
    return result.report, result.manifest


#: Per-worker-process state installed by :func:`_pool_initializer`, so the
#: (potentially large) input graph is shipped once per worker instead of
#: once per trial task.
_WORKER_STATE: Dict[str, object] = {}


def _pool_initializer(graph: AttributedGraph, config: ExperimentConfig,
                      parameters) -> None:
    _WORKER_STATE["graph"] = graph
    _WORKER_STATE["config"] = config
    _WORKER_STATE["parameters"] = parameters


def _trial_worker(stream) -> "tuple[EvaluationReport, RunManifest]":
    """Top-level process-pool entry point (must be picklable by name)."""
    return _run_one_trial(
        _WORKER_STATE["graph"], _WORKER_STATE["config"], stream,
        parameters=_WORKER_STATE["parameters"],
    )


def run_trials_detailed(graph: AttributedGraph, config: ExperimentConfig,
                        rng: SeedLike = None,
                        workers: Optional[int] = None) -> TrialsResult:
    """Run ``config.trials`` pipelines and return reports plus manifests.

    Parameters
    ----------
    graph:
        The input attributed graph.
    config:
        The experiment configuration.
    rng:
        Root seed; trial ``i`` runs on the ``i``-th spawned stream, so the
        result is a pure function of ``(graph, config, rng)`` regardless of
        the worker count.
    workers:
        Worker processes; resolution order is this argument, then
        ``config.workers``, then the ``REPRO_WORKERS`` environment
        variable, then serial.
    """
    if config.trials < 1:
        raise ValueError(f"trials must be >= 1, got {config.trials}")
    if workers is not None:
        worker_count = default_workers(workers)
    elif config.workers is not None:
        worker_count = default_workers(config.workers)
    else:
        worker_count = default_workers()
    worker_count = min(worker_count, config.trials)

    # Exact (non-private) learning is deterministic and consumes no
    # randomness, so fit once here and share the parameters across trials —
    # bit-identical to refitting per trial, without multiplying the fitting
    # cost by the trial count.  DP learning must refit per trial (the paper
    # averages over the learning noise too).
    parameters = None
    if not config.is_private:
        from repro.core.agm import learn_agm

        parameters = learn_agm(graph, backend=config.backend)

    # Warm the evaluation baseline once: the accelerator's primed counts
    # and memoized Θ_F probabilities ride into every serial trial directly
    # and into every worker process through the pool initializer's pickled
    # graph, so per-trial evaluation touches the original in O(1).
    from repro.metrics.incremental import prepare_original_graph

    prepare_original_graph(graph)

    streams = spawn_streams(rng, config.trials)
    if worker_count <= 1:
        outcomes = [
            _run_one_trial(graph, config, stream, parameters=parameters)
            for stream in streams
        ]
    else:
        with ProcessPoolExecutor(
            max_workers=worker_count,
            initializer=_pool_initializer,
            initargs=(graph, config, parameters),
        ) as pool:
            outcomes = list(pool.map(_trial_worker, streams))

    reports = [report for report, _manifest in outcomes]
    manifests = [manifest for _report, manifest in outcomes]
    return TrialsResult(
        report=average_reports(reports),
        trial_reports=reports,
        manifests=manifests,
        workers=worker_count,
    )


def run_trials(graph: AttributedGraph, config: ExperimentConfig,
               rng: SeedLike = None,
               workers: Optional[int] = None) -> EvaluationReport:
    """Average the evaluation metrics of ``config.trials`` pipeline runs."""
    return run_trials_detailed(graph, config, rng=rng, workers=workers).report


def run_agm_trials(graph: AttributedGraph, config: ExperimentConfig,
                   rng: SeedLike = None,
                   workers: Optional[int] = None) -> EvaluationReport:
    """Average ``config.trials`` non-private samples (compatibility wrapper)."""
    if config.is_private:
        config = ExperimentConfig(
            backend=config.backend, epsilon=None, trials=config.trials,
            num_iterations=config.num_iterations,
            truncation_k=config.truncation_k, workers=config.workers,
        )
    return run_trials(graph, config, rng=rng, workers=workers)


def run_agm_dp_trials(graph: AttributedGraph, config: ExperimentConfig,
                      rng: SeedLike = None,
                      workers: Optional[int] = None) -> EvaluationReport:
    """Average ``config.trials`` DP samples.

    Each trial refits the DP parameters (as the paper does), so the reported
    averages include the learning noise, not just the sampling noise.
    """
    if config.epsilon is None:
        raise ValueError("run_agm_dp_trials requires a configuration with epsilon set")
    return run_trials(graph, config, rng=rng, workers=workers)
