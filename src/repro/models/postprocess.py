"""Orphan repair post-processing (Algorithm 2).

Chung-Lu style generators leave some nodes disconnected from the main
component ("orphaned"), especially the abundant degree-one nodes of social
graphs.  Algorithm 2 repairs this: every orphaned node is detached from any
stray edges and reattached to the main component with as many edges as its
desired degree, drawing partners from the π distribution among nodes whose
desired degree is not yet met; whenever the repair would exceed the target
edge count, a random existing edge is removed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.attributed import AttributedGraph
from repro.graphs.components import connected_components
from repro.models.base import EdgeAcceptance
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.sampling import WeightedSampler


def post_process_graph(graph: AttributedGraph, desired_degrees: np.ndarray,
                       pi: np.ndarray, rng: RngLike = None,
                       acceptance: Optional[EdgeAcceptance] = None,
                       max_rounds: Optional[int] = None) -> AttributedGraph:
    """Reconnect orphaned nodes to the main component (Algorithm 2).

    Parameters
    ----------
    graph:
        The generated graph; it is copied, not modified.
    desired_degrees:
        Desired degree per node (the degree sequence ``S`` of the input
        graph, aligned with node ids).
    pi:
        Node-sampling distribution used to pick attachment targets.
    rng:
        Seed or generator.
    acceptance:
        Optional attribute-dependent acceptance probabilities; accepted
        partners are still filtered through them so the repair step does not
        wash out the attribute correlations.
    max_rounds:
        Safety bound on the number of orphan-processing iterations; defaults
        to ``4 * n``.

    Returns
    -------
    AttributedGraph
        A graph with (almost always) a single connected component and a total
        edge count equal to ``sum(desired_degrees) // 2``.
    """
    generator = ensure_rng(rng)
    desired = np.asarray(desired_degrees, dtype=np.int64)
    if desired.size != graph.num_nodes:
        raise ValueError(
            f"desired_degrees must have length {graph.num_nodes}, got {desired.size}"
        )
    pi = np.asarray(pi, dtype=float)
    if pi.size != graph.num_nodes:
        raise ValueError(f"pi must have length {graph.num_nodes}, got {pi.size}")

    result = graph.copy()
    target_edges = int(desired.sum() // 2)
    if max_rounds is None:
        max_rounds = 4 * max(1, graph.num_nodes)
    sampler = WeightedSampler(pi) if pi.sum() > 0 else None

    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        components = connected_components(result)
        if len(components) <= 1:
            break
        main_component = components[0]

        # Pick one orphaned node (deterministically the smallest id outside
        # the main component, so behaviour is reproducible for a fixed seed).
        orphan = min(
            node for component in components[1:] for node in component
        )

        # Detach any stray edges (they can only lead to other orphans).
        for neighbour in list(result.neighbor_set(orphan)):
            result.remove_edge(orphan, neighbour)

        wanted = max(1, int(desired[orphan]))
        attached = 0
        attempts = 0
        max_attempts = 50 * wanted + 50
        while attached < wanted and attempts < max_attempts:
            attempts += 1
            if sampler is not None:
                partner = sampler.sample(generator)
            else:
                partner = int(generator.integers(result.num_nodes))
            if partner == orphan or result.has_edge(orphan, partner):
                continue
            if partner not in main_component:
                continue
            # Prefer partners whose desired degree is not yet met; fall back
            # to any main-component partner once attempts pile up, so the
            # repair always terminates.
            if result.degree(partner) >= desired[partner] and attempts < max_attempts // 2:
                continue
            if acceptance is not None and not acceptance.accepts(
                orphan, partner, generator
            ):
                continue
            result.add_edge(orphan, partner)
            attached += 1
            if result.num_edges > target_edges:
                _remove_random_safe_edge(result, orphan, generator)

    return result


def _remove_random_safe_edge(graph: AttributedGraph, protected_node: int,
                             generator: np.random.Generator,
                             num_candidates: int = 8) -> None:
    """Remove one random edge not incident to ``protected_node``.

    Protecting the freshly repaired node keeps the repair from undoing
    itself; if every edge touches the protected node (tiny graphs), an
    arbitrary edge is removed instead.

    Algorithm 2 deletes an arbitrary random edge.  Among a small random
    sample of candidate edges this implementation prefers, in order:

    1. an edge lying on a triangle (guaranteed not to be a bridge, so the
       removal cannot disconnect the graph) with the fewest common
       neighbours (so the fewest triangles are destroyed);
    2. otherwise, a candidate whose removal keeps the graph connected
       (checked explicitly — this branch is rare);
    3. otherwise, an arbitrary candidate (the outer repair loop will fix any
       resulting orphan on a later round).
    """
    edges = graph.edge_list()
    if not edges:
        return
    candidates = [e for e in edges if protected_node not in e]
    pool = candidates if candidates else edges

    sampled = [
        pool[int(generator.integers(len(pool)))]
        for _ in range(min(num_candidates, len(pool)))
    ]
    on_triangle = [
        (len(graph.common_neighbors(u, v)), (u, v))
        for u, v in sampled
        if len(graph.common_neighbors(u, v)) > 0
    ]
    if on_triangle:
        _count, edge = min(on_triangle, key=lambda item: item[0])
        graph.remove_edge(*edge)
        return

    from repro.graphs.components import is_connected

    for u, v in sampled:
        graph.remove_edge(u, v)
        if is_connected(graph):
            return
        graph.add_edge(u, v)
    graph.remove_edge(*sampled[0])
