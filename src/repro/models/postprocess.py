"""Orphan repair post-processing (Algorithm 2).

Chung-Lu style generators leave some nodes disconnected from the main
component ("orphaned"), especially the abundant degree-one nodes of social
graphs.  Algorithm 2 repairs this: every orphaned node is detached from any
stray edges and reattached to the main component with as many edges as its
desired degree, drawing partners from the π distribution among nodes whose
desired degree is not yet met; whenever the repair would exceed the target
edge count, a random existing edge is removed.

The component decomposition is computed lazily: attaching an orphan moves it
into the main component without touching the other components, so the O(n+m)
scan only reruns when an edge removal may actually have disconnected the
graph (the rare fallback branch of :func:`_remove_random_safe_edge`) or when
the current orphan worklist is exhausted.  Random victim edges are drawn by
degree-weighted node sampling instead of materialising the full edge list.
"""

from __future__ import annotations

from itertools import islice
from typing import List, Optional, Set

import numpy as np

from repro.graphs.attributed import AttributedGraph
from repro.graphs.components import connected_components
from repro.models.base import EdgeAcceptance
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.sampling import WeightedSampler


def post_process_graph(graph: AttributedGraph, desired_degrees: np.ndarray,
                       pi: np.ndarray, rng: RngLike = None,
                       acceptance: Optional[EdgeAcceptance] = None,
                       max_rounds: Optional[int] = None) -> AttributedGraph:
    """Reconnect orphaned nodes to the main component (Algorithm 2).

    Parameters
    ----------
    graph:
        The generated graph; it is copied, not modified.
    desired_degrees:
        Desired degree per node (the degree sequence ``S`` of the input
        graph, aligned with node ids).
    pi:
        Node-sampling distribution used to pick attachment targets.
    rng:
        Seed or generator.
    acceptance:
        Optional attribute-dependent acceptance probabilities; accepted
        partners are still filtered through them so the repair step does not
        wash out the attribute correlations.
    max_rounds:
        Safety bound on the number of orphan-processing iterations; defaults
        to ``4 * n``.

    Returns
    -------
    AttributedGraph
        A graph with (almost always) a single connected component and a total
        edge count equal to ``sum(desired_degrees) // 2``.
    """
    generator = ensure_rng(rng)
    desired = np.asarray(desired_degrees, dtype=np.int64)
    if desired.size != graph.num_nodes:
        raise ValueError(
            f"desired_degrees must have length {graph.num_nodes}, got {desired.size}"
        )
    pi = np.asarray(pi, dtype=float)
    if pi.size != graph.num_nodes:
        raise ValueError(f"pi must have length {graph.num_nodes}, got {pi.size}")

    result = graph.copy()
    target_edges = int(desired.sum() // 2)
    if max_rounds is None:
        max_rounds = 4 * max(1, graph.num_nodes)
    sampler = WeightedSampler(pi) if pi.sum() > 0 else None
    # The repair loop is scalar-probe-heavy: work on the O(1)-update set
    # view directly instead of paying the accessor per membership test.
    result.materialize_neighbor_sets()
    adj = result.adjacency_sets()

    main_component: Set[int] = set()
    worklist: List[int] = []
    cursor = 0
    dirty = True  # the component decomposition must be (re)computed
    rounds = 0
    current_degrees = result.degrees()
    degree_bound = max(1, int(current_degrees.max())) if current_degrees.size else 1
    while rounds < max_rounds:
        rounds += 1
        if dirty or cursor >= len(worklist):
            components = connected_components(result)
            if len(components) <= 1:
                break
            main_component = components[0]
            # Process orphans by ascending id (deterministic for a fixed
            # seed), exactly like the former smallest-id-per-scan rule.
            worklist = sorted(
                node for component in components[1:] for node in component
            )
            cursor = 0
            dirty = False

        orphan = worklist[cursor]
        cursor += 1

        # Detach any stray edges (they can only lead to other orphans).
        for neighbour in list(adj[orphan]):
            result.remove_edge(orphan, neighbour)

        wanted = max(1, int(desired[orphan]))
        attached = 0
        attempts = 0
        max_attempts = 50 * wanted + 50
        while attached < wanted and attempts < max_attempts:
            attempts += 1
            if sampler is not None:
                partner = sampler.sample(generator)
            else:
                partner = int(generator.integers(result.num_nodes))
            if partner == orphan or partner in adj[orphan]:
                continue
            if partner not in main_component:
                continue
            # Prefer partners whose desired degree is not yet met; fall back
            # to any main-component partner once attempts pile up, so the
            # repair always terminates.
            if len(adj[partner]) >= desired[partner] and attempts < max_attempts // 2:
                continue
            if acceptance is not None and not acceptance.accepts(
                orphan, partner, generator
            ):
                continue
            result.add_edge(orphan, partner)
            attached += 1
            degree_bound = max(
                degree_bound, len(adj[orphan]), len(adj[partner])
            )
            if result.num_edges > target_edges:
                if not _remove_random_safe_edge(
                    result, orphan, generator, degree_bound=degree_bound
                ):
                    dirty = True
        if attached:
            main_component.add(orphan)

    return result


def _locally_connected(graph: AttributedGraph, source: int, target: int,
                       edge_budget: int = 4096) -> bool:
    """Budgeted BFS: is ``target`` reachable from ``source``?

    Traverses at most ``edge_budget`` edges.  In the giant component of a
    social graph the alternate path between the endpoints of a removed edge
    is short, so the search almost always succeeds within a handful of
    expansions; an exhausted budget returns ``False`` (treat as "possibly
    disconnected") rather than paying for a full O(n + m) scan.  Budgeting
    edge visits instead of node expansions keeps the worst case bounded on
    hub-heavy graphs, where a few hundred hub expansions can mean hundreds
    of thousands of neighbour probes.
    """
    from collections import deque

    adj = graph.adjacency_sets()
    seen = {source}
    queue = deque([source])
    visited_edges = 0
    while queue and visited_edges < edge_budget:
        node = queue.popleft()
        visited_edges += len(adj[node])
        for neighbour in adj[node]:
            if neighbour == target:
                return True
            if neighbour not in seen:
                seen.add(neighbour)
                queue.append(neighbour)
    return False


def _remove_random_safe_edge(graph: AttributedGraph, protected_node: int,
                             generator: np.random.Generator,
                             num_candidates: int = 8,
                             degree_bound: Optional[int] = None) -> bool:
    """Remove one random edge not incident to ``protected_node``.

    Returns ``True`` when the removal provably kept the graph connected and
    ``False`` when an arbitrary edge was removed (the caller must then
    re-examine connectivity).

    Protecting the freshly repaired node keeps the repair from undoing
    itself; if every sampled edge touches the protected node (tiny graphs),
    an arbitrary edge is removed instead.

    Algorithm 2 deletes an arbitrary random edge.  Candidates are drawn
    uniformly over edges by rejection sampling — pick a node, accept it with
    probability ``degree / degree_bound``, then pick a uniform neighbour —
    which is O(1) per draw instead of materialising the O(m) edge list or an
    O(n) degree table.  Among the candidates this implementation prefers, in
    order:

    1. an edge lying on a triangle (guaranteed not to be a bridge, so the
       removal cannot disconnect the graph) with the fewest common
       neighbours (so the fewest triangles are destroyed);
    2. otherwise, a candidate whose endpoints stay connected after the
       removal (verified with a budgeted local BFS);
    3. otherwise, an arbitrary candidate (the caller's repair loop will fix
       any resulting orphan on a later round).
    """
    if graph.num_edges == 0:
        return True
    n = graph.num_nodes
    adj = graph.adjacency_sets()
    degrees = graph.degrees_view()
    if degree_bound is None or degree_bound < 1:
        degree_bound = max(1, int(degrees.max()))

    sampled = []
    fallback = None
    rounds = 0
    max_rounds = 8
    block = 16 * num_candidates
    while len(sampled) < num_candidates and rounds < max_rounds:
        rounds += 1
        # Scalar RNG calls dominate the rejection loop, so draw the node
        # picks and acceptance coins for a whole block at once, and run the
        # accept test (coin < degree) vectorized — on a skewed degree
        # sequence the acceptance rate is ``d̄ / d_max``, so scanning the
        # rejected draws in Python would dominate the whole repair step.
        nodes = generator.integers(0, n, size=block)
        coins = generator.random(block) * degree_bound
        for position in np.flatnonzero(coins < degrees[nodes]).tolist():
            u = int(nodes[position])
            coin = float(coins[position])
            neighbours = adj[u]
            # Conditioned on acceptance the coin is uniform on [0, du), so
            # its integer part doubles as a uniform neighbour index (walked
            # with islice — same iteration order as tuple(...)[index], but
            # without materialising a hub-sized tuple per draw).
            v = next(islice(neighbours, int(coin), None))
            edge = (u, v) if u < v else (v, u)
            if protected_node in edge:
                fallback = fallback or edge
                continue
            sampled.append(edge)
            if len(sampled) >= num_candidates:
                break
    if not sampled:
        if fallback is None:
            # Rejection sampling found nothing (extremely skewed degrees
            # make per-draw acceptance tiny).  Fall back to one exact
            # degree-weighted draw so an edge is always removed — returning
            # without removing would leave the graph above its target edge
            # count.
            cumulative = np.cumsum(graph.degrees())
            r = int(generator.integers(int(cumulative[-1])))
            u = int(np.searchsorted(cumulative, r, side="right"))
            offset = r - (int(cumulative[u - 1]) if u else 0)
            v = tuple(adj[u])[offset]
            fallback = (u, v) if u < v else (v, u)
        sampled = [fallback]

    on_triangle = [
        (count, edge)
        for count, edge in (
            (graph.count_common_neighbors(u, v), (u, v)) for u, v in sampled
        )
        if count > 0
    ]
    if on_triangle:
        _count, edge = min(on_triangle, key=lambda item: item[0])
        graph.remove_edge(*edge)
        return True

    for u, v in sampled:
        graph.remove_edge(u, v)
        # An endpoint left isolated is certainly disconnected — same verdict
        # as the budgeted BFS, without the scan.  Otherwise search from the
        # lower-degree side: a small detached fragment empties the queue (a
        # cheap, definitive "no") where the giant side would burn the whole
        # budget.
        if len(adj[u]) and len(adj[v]):
            source, sink = (u, v) if len(adj[u]) <= len(adj[v]) else (v, u)
            if _locally_connected(graph, source, sink):
                return True
        graph.add_edge(u, v)
    graph.remove_edge(*sampled[0])
    return False
