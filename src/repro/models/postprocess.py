"""Orphan repair post-processing (Algorithm 2).

Chung-Lu style generators leave some nodes disconnected from the main
component ("orphaned"), especially the abundant degree-one nodes of social
graphs.  Algorithm 2 repairs this: every orphaned node is detached from any
stray edges and reattached to the main component with as many edges as its
desired degree, drawing partners from the π distribution among nodes whose
desired degree is not yet met; whenever the repair would exceed the target
edge count, a random existing edge is removed.

Two implementations share the same outer loop semantics:

* the **vectorized engine** (default, ``vectorized=True``) presamples the
  π attach draws through a cursor-backed
  :class:`~repro.utils.sampling.PresampledStream`, evaluates the partner
  filters (self, main-component membership via a
  :class:`~repro.utils.membership.PartitionedKeyBitmap`, desired-degree
  headroom via the live ``degrees_view``) as array masks per block, samples
  victim edges as uniform slots of an incrementally refreshed CSR snapshot,
  scores them with vectorized common-neighbour passes over the snapshot
  rows, and verifies speculative removals with the budgeted numpy frontier
  BFS shared with :mod:`repro.graphs.components`
  (:class:`~repro.graphs.components.BudgetedReachability`) — no Python sets
  anywhere on the hot path;
* the **scalar reference** (``vectorized=False``) keeps the original
  per-attempt probe loop and is retained for A/B debugging and the perf
  harness.  The two paths consume the RNG differently, so they produce
  different graphs for the same seed while targeting the same distribution
  (pinned by the equivalence tests).

The component decomposition is computed lazily: attaching an orphan moves it
into the main component without touching the other components, so the O(n+m)
scan only reruns when an edge removal may actually have disconnected the
graph or when the current orphan worklist is exhausted.

When the requested edge budget cannot possibly yield one component
(``sum(desired) // 2 < n - 1``) the repair warns once up front, and either
path stops early once full passes over the orphan worklist stop shrinking
it — instead of silently churning (removing and re-adding edges, burning
RNG draws) until ``max_rounds``.
"""

from __future__ import annotations

import warnings
from itertools import islice
from typing import List, Optional, Set, Tuple

import numpy as np

from repro.graphs.attributed import AttributedGraph
from repro.graphs.components import (
    BudgetedReachability,
    _gather_frontier,
    _labels_from_csr,
    _sorted_dedupe,
    connected_components,
)
from repro.models.base import EdgeAcceptance
from repro.utils.arrays import (
    directed_keys_to_csr,
    fold_sorted_keys,
    sorted_intersect,
    sorted_membership,
)
from repro.utils.membership import PartitionedKeyBitmap
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.sampling import PresampledStream, WeightedSampler

#: Candidate victim edges scored per removal (the second chunk, consulted
#: only when the first contains no triangle edge, doubles the pool).
_NUM_CANDIDATES = 8

#: Edge-visit budget of the speculative-removal reachability probe.
_BFS_EDGE_BUDGET = 4096

#: Mutations (relative to the CSR snapshot) that trigger a snapshot refresh
#: in the vectorized engine.  Tighter windows keep the pre-scored victim
#: slots and triangle proofs fresh in removal-heavy phases; wider ones
#: amortize the O(n + m) fold.  Measured sweet spot at the 20k tier.
_SNAPSHOT_REFRESH = 2048

#: Worklist rebuilds without a net reduction of the orphan set before the
#: repair gives up (1 when the target is provably infeasible).
_STALL_LIMIT = 3


def _warn_infeasible(target_edges: int, num_nodes: int) -> None:
    warnings.warn(
        f"orphan repair cannot produce a connected graph: the target edge "
        f"count {target_edges} is below the spanning minimum "
        f"{num_nodes - 1} for {num_nodes} nodes; repairing best-effort and "
        f"stopping once no further orphans can be attached",
        UserWarning,
        stacklevel=3,
    )


def post_process_graph(graph: AttributedGraph, desired_degrees: np.ndarray,
                       pi: np.ndarray, rng: RngLike = None,
                       acceptance: Optional[EdgeAcceptance] = None,
                       max_rounds: Optional[int] = None,
                       vectorized: bool = True) -> AttributedGraph:
    """Reconnect orphaned nodes to the main component (Algorithm 2).

    Parameters
    ----------
    graph:
        The generated graph; it is copied, not modified.
    desired_degrees:
        Desired degree per node (the degree sequence ``S`` of the input
        graph, aligned with node ids).
    pi:
        Node-sampling distribution used to pick attachment targets.
    rng:
        Seed or generator.
    acceptance:
        Optional attribute-dependent acceptance probabilities; accepted
        partners are still filtered through them so the repair step does not
        wash out the attribute correlations.
    max_rounds:
        Safety bound on the number of orphan-processing iterations; defaults
        to ``4 * n``.
    vectorized:
        Run the block-vectorized repair engine (default).  ``False`` selects
        the scalar reference loop; the paths consume the RNG differently, so
        outputs differ per seed while following the same distribution.

    Returns
    -------
    AttributedGraph
        A graph with (almost always) a single connected component and a total
        edge count equal to ``sum(desired_degrees) // 2``.
    """
    generator = ensure_rng(rng)
    desired = np.asarray(desired_degrees, dtype=np.int64)
    if desired.size != graph.num_nodes:
        raise ValueError(
            f"desired_degrees must have length {graph.num_nodes}, got {desired.size}"
        )
    pi = np.asarray(pi, dtype=float)
    if pi.size != graph.num_nodes:
        raise ValueError(f"pi must have length {graph.num_nodes}, got {pi.size}")

    result = graph.copy()
    source_accel = graph.metrics_accelerator
    if source_accel is not None and source_accel.maintains_structure:
        # Copies never inherit the accelerator attachment, but the copy is
        # structurally identical right now, so the primed counts carry over
        # verbatim.  The scalar repair path then maintains them per edge in
        # O(delta); the vectorized engine's wholesale adoption invalidates
        # them (recompute on next query) — both exact.
        source_accel.clone_to(result)
    target_edges = int(desired.sum() // 2)
    if max_rounds is None:
        max_rounds = 4 * max(1, graph.num_nodes)

    if vectorized:
        _RepairEngine(
            result, desired, pi, generator, acceptance, target_edges,
            max_rounds,
        ).run()
        return result
    _post_process_scalar(
        result, desired, pi, generator, acceptance, target_edges, max_rounds
    )
    return result


# ----------------------------------------------------------------------
# Vectorized repair engine
# ----------------------------------------------------------------------
class _RepairEngine:
    """Block-vectorized Algorithm 2 repair over one graph.

    The engine *owns* the working structure — a CSR snapshot, an exact
    mutation overlay (canonical edge keys added/removed since the snapshot,
    O(1) set updates), the degree array and the edge count — and does not
    touch the graph object until one vectorized adoption pass at the end
    (the same discipline as the TriCycLe rewiring engine), so no per-edge
    mutation ever pays the graph's bookkeeping.  The snapshot serves
    victim-edge slot sampling, common-neighbour scoring, the component
    decomposition and the budgeted reachability probe; the overlay is
    folded in — one sort-free O(n + m + δ) merge — at every decomposition
    and whenever it outgrows :data:`_SNAPSHOT_REFRESH`.

    The attach loop runs in *rounds over the whole orphan worklist*: round
    ``r`` hands every still-unattached orphan its ``r``-th π draw from the
    presampled stream and evaluates all partner filters (self,
    main-component membership, desired-degree headroom, acceptance coins)
    as one array mask, so the per-orphan Python work is reduced to the
    admissions that actually mutate the edge set.
    """

    def __init__(self, graph: AttributedGraph, desired: np.ndarray,
                 pi: np.ndarray, generator: np.random.Generator,
                 acceptance: Optional[EdgeAcceptance], target_edges: int,
                 max_rounds: int) -> None:
        self._graph = graph
        self._n = graph.num_nodes
        self._desired = desired
        self._generator = generator
        self._acceptance = acceptance
        self._target_edges = target_edges
        self._max_rounds = max_rounds
        self._stream: Optional[PresampledStream] = (
            PresampledStream(WeightedSampler(pi), generator, block_size=2048)
            if pi.sum() > 0 else None
        )
        self._reach = BudgetedReachability(self._n)
        self._indptr, self._indices = graph.csr()
        # Sorted directed-key table of the snapshot (``u * n + v`` for every
        # edge orientation) — the common-neighbour scorer's search target,
        # kept in lockstep with the snapshot (every fold produces the next
        # table as its intermediate, so maintenance is free).
        self._sdk = np.repeat(
            np.arange(self._n, dtype=np.int64), np.diff(self._indptr)
        ) * self._n + self._indices
        self._degrees = graph.degrees()
        self._m = graph.num_edges
        self._mutated = False
        # Canonical keys (min * n + max) mutated relative to the snapshot;
        # sorted directed-key arrays are derived lazily for the (rare) bulk
        # consumers, so the per-mutation cost stays O(1).
        self._added: Set[int] = set()
        self._removed: Set[int] = set()
        self._touched: dict = {}
        self._deltas_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        # Presampled, pre-scored victim slots of the current snapshot —
        # Python lists (one bulk ``tolist`` per replenish), because the
        # consumer pops scalars and list reads beat numpy scalar indexing.
        self._slot_lo: List[int] = []
        self._slot_hi: List[int] = []
        self._slot_counts: List[int] = []
        self._slot_cursor = 0
        self._main = PartitionedKeyBitmap.build_sorted(
            np.empty(0, dtype=np.int64)
        )

    # ------------------------------------------------------------------
    # Mutation bookkeeping (engine-owned, the graph is never touched)
    # ------------------------------------------------------------------
    def _add_edge(self, u: int, v: int) -> None:
        key = u * self._n + v if u < v else v * self._n + u
        if key in self._removed:
            self._removed.discard(key)
        else:
            self._added.add(key)
        self._degrees[u] += 1
        self._degrees[v] += 1
        self._m += 1
        self._mutated = True
        self._deltas_cache = None

    def _remove_edge(self, u: int, v: int) -> None:
        key = u * self._n + v if u < v else v * self._n + u
        if key in self._added:
            self._added.discard(key)
        else:
            self._removed.add(key)
        self._degrees[u] -= 1
        self._degrees[v] -= 1
        self._m -= 1
        self._mutated = True
        self._deltas_cache = None
        # Removals invalidate snapshot-based triangle proofs around their
        # endpoints; _remove_victim bounds the possible damage with these
        # per-node counts before trusting a pre-scored common-neighbour
        # count (each removal at u can destroy at most one of the edge's
        # supporting triangles).
        self._touched[u] = self._touched.get(u, 0) + 1
        self._touched[v] = self._touched.get(v, 0) + 1

    def _fold(self) -> None:
        """Merge the overlay into a fresh snapshot (sort-free, O(n+m+δ))."""
        if not self._added and not self._removed:
            return
        added_d, removed_d = self._deltas()
        self._sdk = fold_sorted_keys(self._sdk, added_d, removed_d)
        self._indptr, self._indices = directed_keys_to_csr(
            self._n, self._sdk
        )
        self._added.clear()
        self._removed.clear()
        self._touched.clear()
        self._deltas_cache = None
        self._slot_lo = []
        self._slot_hi = []
        self._slot_counts = []
        self._slot_cursor = 0

    def _deltas(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(added_directed, removed_directed)``, sorted (both orientations)."""
        if self._deltas_cache is None:
            n = self._n

            def directed(keys: Set[int]) -> np.ndarray:
                if not keys:
                    return np.empty(0, dtype=np.int64)
                canon = np.fromiter(keys, dtype=np.int64, count=len(keys))
                lo = canon // n
                hi = canon % n
                both = np.concatenate((canon, hi * n + lo))
                both.sort()
                return both

            self._deltas_cache = (
                directed(self._added), directed(self._removed)
            )
        return self._deltas_cache

    def _live_row(self, node: int) -> np.ndarray:
        """Live neighbours of ``node``: snapshot row corrected by the overlay."""
        row = self._indices[self._indptr[node]:self._indptr[node + 1]]
        if not self._added and not self._removed:
            return row
        n = self._n
        added_d, removed_d = self._deltas()
        lo, hi = node * n, node * n + n
        r0, r1 = np.searchsorted(removed_d, (lo, hi))
        if r1 > r0:
            row = row[~sorted_membership(removed_d[r0:r1] - lo, row)]
        a0, a1 = np.searchsorted(added_d, (lo, hi))
        if a1 > a0:
            row = np.concatenate((row, added_d[a0:a1] - lo))
        return row

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> None:
        self._run_loop()
        if self._mutated:
            self._fold()
            self._graph._adopt_directed_keys(
                self._sdk, self._m
            )

    def _run_loop(self) -> None:
        rounds = 0
        best_orphans: Optional[int] = None
        stalls = 0
        stall_limit = _STALL_LIMIT
        warned = False
        while rounds < self._max_rounds:
            self._fold()
            labels, count = _labels_from_csr(
                self._n, self._indptr, self._indices
            )
            if count <= 1:
                return
            sizes = np.bincount(labels, minlength=count)
            # argmax takes the first maximum; labels are assigned in
            # increasing min-node order, so ties resolve exactly like the
            # reference's (-size, min node) sort.
            main_label = int(sizes.argmax())
            if not warned and self._target_edges < self._n - 1:
                _warn_infeasible(self._target_edges, self._n)
                warned = True
                stall_limit = 1
            # Process orphans by ascending id (deterministic for a fixed
            # seed), exactly like the scalar reference.
            worklist = np.flatnonzero(labels != main_label)
            if best_orphans is not None and worklist.size >= best_orphans:
                stalls += 1
                if stalls >= stall_limit:
                    return
            else:
                best_orphans = int(worklist.size)
                stalls = 0
            self._main = PartitionedKeyBitmap.build_sorted(
                np.flatnonzero(labels == main_label)
            )
            truncated = worklist.size > self._max_rounds - rounds
            worklist = worklist[:self._max_rounds - rounds]
            rounds += int(worklist.size)
            clean, all_attached = self._attach_pass(worklist)
            if clean and all_attached and not truncated:
                # Every non-main node now provably hangs off the main
                # component (each attached at least one edge to it) and
                # every removal was verified connectivity-safe, so the
                # graph is one component — skip the confirming O(n + m)
                # decomposition.
                return

    # ------------------------------------------------------------------
    # Attach pass (one worklist, round-batched)
    # ------------------------------------------------------------------
    def _detach_all(self, worklist: np.ndarray) -> None:
        """Remove every stray edge incident to the worklist orphans.

        Runs right after a snapshot refresh, so the snapshot rows *are* the
        live adjacency: one frontier gather yields all stray edges at once.
        """
        neighbours, owners = _gather_frontier(
            self._indptr, self._indices, worklist
        )
        if neighbours.size == 0:
            return
        lo = np.minimum(owners, neighbours)
        hi = np.maximum(owners, neighbours)
        n = self._n
        keys = _sorted_dedupe(lo * n + hi)
        for key in keys.tolist():
            self._remove_edge(key // n, key % n)

    def _attach_pass(self, worklist: np.ndarray) -> Tuple[bool, bool]:
        """Give every orphan its per-round π draws until attached/exhausted.

        Returns ``(clean, all_attached)``: whether every victim removal was
        verified connectivity-safe, and whether every worklist orphan ended
        up holding at least one edge into the main component.
        """
        generator = self._generator
        degrees = self._degrees
        desired = self._desired
        n = self._n
        self._detach_all(worklist)

        pending = worklist.copy()
        wanted = np.maximum(1, desired[pending])
        budget = 50 * wanted + 50
        half = budget // 2
        attached = np.zeros(pending.size, dtype=np.int64)
        # Partners already wired per multi-edge orphan (duplicate filter);
        # the common degree-one case never allocates an entry.
        partner_sets: dict = {}
        clean = True
        all_attached = True
        round_index = 0
        while pending.size:
            round_index += 1
            if self._stream is not None:
                partners = self._stream.take(pending.size)
            else:
                partners = generator.integers(0, n, size=pending.size)
            mask = partners != pending
            mask &= self._main.contains(partners)
            # Prefer partners whose desired degree is not yet met; the
            # filter is dropped for an orphan once its attempts pile up, so
            # the repair always terminates (the reference's escape hatch).
            headroom = round_index < half
            saturated = degrees[partners] >= desired[partners]
            mask &= ~(headroom & saturated)
            if self._acceptance is not None:
                chosen = np.flatnonzero(mask)
                if chosen.size:
                    probabilities = self._acceptance.pair_probabilities(
                        pending[chosen], partners[chosen]
                    )
                    coins = generator.random(chosen.size)
                    mask[chosen[coins > probabilities]] = False
            positions = np.flatnonzero(mask)
            orphan_list = pending[positions].tolist()
            partner_list = partners[positions].tolist()
            for position, orphan, partner in zip(
                positions.tolist(), orphan_list, partner_list
            ):
                if attached[position]:
                    # Multi-edge orphans must not re-pick a partner.
                    if partner in partner_sets[orphan]:
                        continue
                if headroom[position] and degrees[partner] >= desired[partner]:
                    # Degrees moved under this round's mask (an earlier
                    # admission in the same round raised them).
                    continue
                self._add_edge(orphan, partner)
                attached[position] += 1
                if wanted[position] > 1:
                    partner_sets.setdefault(orphan, set()).add(partner)
                if self._m > self._target_edges:
                    if not self._remove_victim(orphan):
                        clean = False
            done = attached >= wanted
            exhausted = ~done & (round_index >= budget)
            finished = done | exhausted
            if finished.any():
                if (exhausted & (attached == 0)).any():
                    all_attached = False
                # The reference mainlines an orphan as soon as it holds at
                # least one repaired edge.
                for orphan in pending[finished & (attached > 0)].tolist():
                    self._main.add_key(orphan)
                keep = ~finished
                pending = pending[keep]
                wanted = wanted[keep]
                budget = budget[keep]
                half = half[keep]
                attached = attached[keep]
        return clean, all_attached

    # ------------------------------------------------------------------
    # Victim-edge removal
    # ------------------------------------------------------------------
    def _replenish_slots(self) -> None:
        """Presample and pre-score a block of victim slots of the snapshot.

        Slots are uniform directed-edge positions (degree-weighted node
        pick + uniform neighbour pick, like the reference's rejection
        sampler) and every slot's common-neighbour count is computed here,
        in **one vectorized pass over the CSR rows of the whole block** —
        so consuming a candidate costs a cursor bump and two set probes,
        with no per-removal row work at all.
        """
        num_slots = self._indices.size
        if num_slots == 0:
            self._slot_lo = []
            self._slot_hi = []
            self._slot_counts = []
            self._slot_cursor = 0
            return
        slots = self._generator.integers(0, num_slots, size=1024)
        keys = self._sdk[slots]
        us = keys // self._n
        vs = keys % self._n
        lo = np.minimum(us, vs)
        hi = np.maximum(us, vs)
        self._slot_lo = lo.tolist()
        self._slot_hi = hi.tolist()
        self._slot_counts = self._common_neighbour_counts(lo, hi).tolist()
        self._slot_cursor = 0

    def _remove_victim(self, protected_node: int) -> bool:
        """Remove one random edge not incident to ``protected_node``.

        Returns ``True`` when the removal provably (up to snapshot
        staleness) kept the graph connected and ``False`` when an arbitrary
        edge was removed — any disconnection missed through staleness is
        caught by the next full component decomposition, so the output
        invariants are unaffected.

        Candidates are uniform random *slots* of the directed CSR snapshot
        (equivalent to the reference's degree-weighted node pick followed
        by a uniform neighbour pick), presampled in blocks and validated
        against the mutation overlay as they are consumed.  Preference
        order matches the reference: a triangle edge destroying the fewest
        triangles, then a candidate whose endpoints the budgeted frontier
        BFS still connects, then an arbitrary candidate.
        """
        if self._m == 0:
            return True
        if len(self._added) + len(self._removed) > _SNAPSHOT_REFRESH:
            self._fold()
        n = self._n
        removed = self._removed
        candidates: List[Tuple[int, int]] = []
        positives: List[Tuple[int, int, int]] = []
        fallback: Optional[Tuple[int, int]] = None
        consumed = 0
        # Consume pre-scored slots in two chunks: the reference-sized
        # candidate pool first, then — only when it contains no triangle
        # edge — a second chunk before paying a reachability probe.
        limit = _NUM_CANDIDATES
        slot_lo, slot_hi = self._slot_lo, self._slot_hi
        slot_counts = self._slot_counts
        cursor = self._slot_cursor
        buffered = len(slot_lo)
        filled = 0
        while filled < limit and consumed < 512:
            if cursor >= buffered:
                self._slot_cursor = cursor
                self._replenish_slots()
                slot_lo, slot_hi = self._slot_lo, self._slot_hi
                slot_counts = self._slot_counts
                cursor = self._slot_cursor
                buffered = len(slot_lo)
                if buffered == 0:
                    break
            lo = slot_lo[cursor]
            hi = slot_hi[cursor]
            count = slot_counts[cursor]
            cursor += 1
            consumed += 1
            if lo * n + hi in removed:
                continue
            if lo == protected_node or hi == protected_node:
                if fallback is None:
                    fallback = (lo, hi)
                continue
            candidates.append((lo, hi))
            filled += 1
            # An edge on a triangle is (modulo snapshot staleness) not a
            # bridge; among those prefer the fewest common neighbours so
            # the fewest triangles are destroyed.
            if count > 0:
                positives.append((count, lo, hi))
            if filled >= limit and not positives \
                    and limit == _NUM_CANDIDATES:
                limit = 2 * _NUM_CANDIDATES
        self._slot_cursor = cursor
        if not candidates:
            if fallback is None:
                # The snapshot had no usable slots (e.g. every live edge
                # was added after it).  Fall back to one exact
                # degree-weighted draw over the live edge set so an edge is
                # always removed.
                cumulative = np.cumsum(self._degrees)
                r = int(self._generator.integers(int(cumulative[-1])))
                u = int(np.searchsorted(cumulative, r, side="right"))
                offset = r - (int(cumulative[u - 1]) if u else 0)
                v = int(self._live_row(u)[offset])
                fallback = (u, v) if u < v else (v, u)
            candidates = [fallback]
            counts = self._common_neighbour_counts(
                np.array([candidates[0][0]], dtype=np.int64),
                np.array([candidates[0][1]], dtype=np.int64),
            )
            if int(counts[0]) > 0:
                positives.append(
                    (int(counts[0]), candidates[0][0], candidates[0][1])
                )
        if positives:
            # A pre-scored count proves an edge sits on a triangle — hence
            # is no bridge — as long as the removals that touched its
            # endpoints since the snapshot cannot have destroyed every
            # supporting common neighbour (each such removal kills at most
            # one); past that bound, re-prove liveness exactly.  Walk the
            # positives by ascending count (fewest triangles destroyed
            # first) and take the first whose proof stands.
            touched = self._touched
            positives.sort()
            for count, u, v in positives:
                if count > touched.get(u, 0) + touched.get(v, 0) \
                        or self._triangle_alive(u, v):
                    self._remove_edge(u, v)
                    return True

        degrees = self._degrees
        added_d, removed_d = self._deltas()
        for u, v in candidates:
            # An endpoint left with no other edge is certainly
            # disconnected.  Otherwise probe reachability *as if* the edge
            # were removed — the trial overlay is the removal delta plus
            # this one edge, so no mutation churn (or triangle-proof
            # pollution) happens for rejected candidates.  Probe from the
            # lower-degree side: a small detached fragment empties the
            # frontier (a cheap, definitive "no") where the giant side
            # would burn the whole budget.
            if degrees[u] > 1 and degrees[v] > 1:
                source, sink = (u, v) if degrees[u] <= degrees[v] else (v, u)
                trial_keys = np.array(
                    [u * n + v, v * n + u], dtype=np.int64
                )
                if u * n + v in self._added:
                    # A fallback candidate can be an overlay-added edge
                    # (absent from the snapshot); the trial must drop it
                    # from the added overlay, or the probe would reach the
                    # sink through the very edge being removed.
                    trial_added = np.delete(
                        added_d, np.searchsorted(added_d, trial_keys)
                    )
                    trial_removed = removed_d
                else:
                    trial_added = added_d
                    trial_removed = np.insert(
                        removed_d, np.searchsorted(removed_d, trial_keys),
                        trial_keys,
                    )
                if self._reach.reachable(
                    self._indptr, self._indices, source, sink,
                    edge_budget=_BFS_EDGE_BUDGET,
                    added_keys=trial_added, removed_keys=trial_removed,
                ):
                    self._remove_edge(u, v)
                    return True
        self._remove_edge(*candidates[0])
        return False

    def _triangle_alive(self, u: int, v: int) -> bool:
        """Exact check: does ``{u, v}`` still sit on a live triangle?

        Walks the snapshot-row common neighbours and accepts the first one
        whose two supporting edges are not in the removal overlay.  Called
        only when a removal since the snapshot touched ``u`` or ``v``.
        """
        indptr, indices = self._indptr, self._indices
        n = self._n
        removed = self._removed
        common = sorted_intersect(
            indices[indptr[u]:indptr[u + 1]],
            indices[indptr[v]:indptr[v + 1]],
        )
        for w in common.tolist():
            key_u = u * n + w if u < w else w * n + u
            key_v = v * n + w if v < w else w * n + v
            if key_u not in removed and key_v not in removed:
                return True
        return False

    def _common_neighbour_counts(self, us: np.ndarray, vs: np.ndarray
                                 ) -> np.ndarray:
        """Common-neighbour count per edge ``(us[i], vs[i])``, snapshot rows.

        All pairs are scored in one pass: each pair's *smaller-degree*
        endpoint row is gathered (one frontier-style pass), every gathered
        neighbour ``w`` is turned into the directed key ``other * n + w``,
        and one ``searchsorted`` against the snapshot's directed-key table
        answers all membership probes; a ``bincount`` reduces the hits per
        pair.  Querying from the smaller side halves the gathered volume on
        the degree-weighted victim slots, which land on hubs by design.
        """
        indptr = self._indptr
        n = self._n
        k = us.size
        degree_u = indptr[us + 1] - indptr[us]
        degree_v = indptr[vs + 1] - indptr[vs]
        smaller_first = degree_u <= degree_v
        query_nodes = np.where(smaller_first, us, vs)
        other_nodes = np.where(smaller_first, vs, us)
        neighbours, _owners = _gather_frontier(
            indptr, self._indices, query_nodes
        )
        if neighbours.size == 0:
            return np.zeros(k, dtype=np.int64)
        pair_index = np.repeat(
            np.arange(k, dtype=np.int64),
            np.minimum(degree_u, degree_v),
        )
        hits = sorted_membership(
            self._sdk, other_nodes[pair_index] * n + neighbours
        )
        return np.bincount(pair_index[hits], minlength=k)


# ----------------------------------------------------------------------
# Scalar reference loop (``vectorized=False``)
# ----------------------------------------------------------------------
def _post_process_scalar(result: AttributedGraph, desired: np.ndarray,
                         pi: np.ndarray, generator: np.random.Generator,
                         acceptance: Optional[EdgeAcceptance],
                         target_edges: int, max_rounds: int) -> None:
    """The original per-attempt repair loop, mutating ``result`` in place."""
    sampler = WeightedSampler(pi) if pi.sum() > 0 else None
    # The repair loop is scalar-probe-heavy: work on the O(1)-update set
    # view directly instead of paying the accessor per membership test.
    result.materialize_neighbor_sets()
    adj = result.adjacency_sets()

    main_component: Set[int] = set()
    worklist: List[int] = []
    cursor = 0
    dirty = True  # the component decomposition must be (re)computed
    rounds = 0
    best_orphans: Optional[int] = None
    stalls = 0
    stall_limit = _STALL_LIMIT
    warned = False
    current_degrees = result.degrees()
    degree_bound = max(1, int(current_degrees.max())) if current_degrees.size else 1
    while rounds < max_rounds:
        rounds += 1
        if dirty or cursor >= len(worklist):
            components = connected_components(result)
            if len(components) <= 1:
                break
            main_component = components[0]
            if not warned and target_edges < result.num_nodes - 1:
                _warn_infeasible(target_edges, result.num_nodes)
                warned = True
                stall_limit = 1
            # Process orphans by ascending id (deterministic for a fixed
            # seed), exactly like the former smallest-id-per-scan rule.
            worklist = sorted(
                node for component in components[1:] for node in component
            )
            if best_orphans is not None and len(worklist) >= best_orphans:
                stalls += 1
                if stalls >= stall_limit:
                    break
            else:
                best_orphans = len(worklist)
                stalls = 0
            cursor = 0
            dirty = False

        orphan = worklist[cursor]
        cursor += 1

        # Detach any stray edges (they can only lead to other orphans).
        for neighbour in list(adj[orphan]):
            result.remove_edge(orphan, neighbour)

        wanted = max(1, int(desired[orphan]))
        attached = 0
        attempts = 0
        max_attempts = 50 * wanted + 50
        while attached < wanted and attempts < max_attempts:
            attempts += 1
            if sampler is not None:
                partner = sampler.sample(generator)
            else:
                partner = int(generator.integers(result.num_nodes))
            if partner == orphan or partner in adj[orphan]:
                continue
            if partner not in main_component:
                continue
            # Prefer partners whose desired degree is not yet met; fall back
            # to any main-component partner once attempts pile up, so the
            # repair always terminates.
            if len(adj[partner]) >= desired[partner] and attempts < max_attempts // 2:
                continue
            if acceptance is not None and not acceptance.accepts(
                orphan, partner, generator
            ):
                continue
            result.add_edge(orphan, partner)
            attached += 1
            degree_bound = max(
                degree_bound, len(adj[orphan]), len(adj[partner])
            )
            if result.num_edges > target_edges:
                if not _remove_random_safe_edge(
                    result, orphan, generator, degree_bound=degree_bound
                ):
                    dirty = True
        if attached:
            main_component.add(orphan)


def _locally_connected(graph: AttributedGraph, source: int, target: int,
                       edge_budget: int = 4096) -> bool:
    """Budgeted BFS: is ``target`` reachable from ``source``?

    Traverses at most ``edge_budget`` edges.  In the giant component of a
    social graph the alternate path between the endpoints of a removed edge
    is short, so the search almost always succeeds within a handful of
    expansions; an exhausted budget returns ``False`` (treat as "possibly
    disconnected") rather than paying for a full O(n + m) scan.  Budgeting
    edge visits instead of node expansions keeps the worst case bounded on
    hub-heavy graphs, where a few hundred hub expansions can mean hundreds
    of thousands of neighbour probes.

    This is the scalar reference; the vectorized engine runs the same
    budgeted search through
    :class:`repro.graphs.components.BudgetedReachability`.
    """
    from collections import deque

    adj = graph.adjacency_sets()
    seen = {source}
    queue = deque([source])
    visited_edges = 0
    while queue and visited_edges < edge_budget:
        node = queue.popleft()
        visited_edges += len(adj[node])
        for neighbour in adj[node]:
            if neighbour == target:
                return True
            if neighbour not in seen:
                seen.add(neighbour)
                queue.append(neighbour)
    return False


def _remove_random_safe_edge(graph: AttributedGraph, protected_node: int,
                             generator: np.random.Generator,
                             num_candidates: int = 8,
                             degree_bound: Optional[int] = None) -> bool:
    """Remove one random edge not incident to ``protected_node``.

    Returns ``True`` when the removal provably kept the graph connected and
    ``False`` when an arbitrary edge was removed (the caller must then
    re-examine connectivity).

    Protecting the freshly repaired node keeps the repair from undoing
    itself; if every sampled edge touches the protected node (tiny graphs),
    an arbitrary edge is removed instead.

    Algorithm 2 deletes an arbitrary random edge.  Candidates are drawn
    uniformly over edges by rejection sampling — pick a node, accept it with
    probability ``degree / degree_bound``, then pick a uniform neighbour —
    which is O(1) per draw instead of materialising the O(m) edge list or an
    O(n) degree table.  Among the candidates this implementation prefers, in
    order:

    1. an edge lying on a triangle (guaranteed not to be a bridge, so the
       removal cannot disconnect the graph) with the fewest common
       neighbours (so the fewest triangles are destroyed);
    2. otherwise, a candidate whose endpoints stay connected after the
       removal (verified with a budgeted local BFS);
    3. otherwise, an arbitrary candidate (the caller's repair loop will fix
       any resulting orphan on a later round).
    """
    if graph.num_edges == 0:
        return True
    n = graph.num_nodes
    adj = graph.adjacency_sets()
    degrees = graph.degrees_view()
    if degree_bound is None or degree_bound < 1:
        degree_bound = max(1, int(degrees.max()))

    sampled = []
    fallback = None
    rounds = 0
    max_rounds = 8
    block = 16 * num_candidates
    while len(sampled) < num_candidates and rounds < max_rounds:
        rounds += 1
        # Scalar RNG calls dominate the rejection loop, so draw the node
        # picks and acceptance coins for a whole block at once, and run the
        # accept test (coin < degree) vectorized — on a skewed degree
        # sequence the acceptance rate is ``d̄ / d_max``, so scanning the
        # rejected draws in Python would dominate the whole repair step.
        nodes = generator.integers(0, n, size=block)
        coins = generator.random(block) * degree_bound
        for position in np.flatnonzero(coins < degrees[nodes]).tolist():
            u = int(nodes[position])
            coin = float(coins[position])
            neighbours = adj[u]
            # Conditioned on acceptance the coin is uniform on [0, du), so
            # its integer part doubles as a uniform neighbour index (walked
            # with islice — same iteration order as tuple(...)[index], but
            # without materialising a hub-sized tuple per draw).
            v = next(islice(neighbours, int(coin), None))
            edge = (u, v) if u < v else (v, u)
            if protected_node in edge:
                fallback = fallback or edge
                continue
            sampled.append(edge)
            if len(sampled) >= num_candidates:
                break
    if not sampled:
        if fallback is None:
            # Rejection sampling found nothing (extremely skewed degrees
            # make per-draw acceptance tiny).  Fall back to one exact
            # degree-weighted draw so an edge is always removed — returning
            # without removing would leave the graph above its target edge
            # count.
            cumulative = np.cumsum(graph.degrees())
            r = int(generator.integers(int(cumulative[-1])))
            u = int(np.searchsorted(cumulative, r, side="right"))
            offset = r - (int(cumulative[u - 1]) if u else 0)
            v = tuple(adj[u])[offset]
            fallback = (u, v) if u < v else (v, u)
        sampled = [fallback]

    on_triangle = [
        (count, edge)
        for count, edge in (
            (graph.count_common_neighbors(u, v), (u, v)) for u, v in sampled
        )
        if count > 0
    ]
    if on_triangle:
        _count, edge = min(on_triangle, key=lambda item: item[0])
        graph.remove_edge(*edge)
        return True

    for u, v in sampled:
        graph.remove_edge(u, v)
        # An endpoint left isolated is certainly disconnected — same verdict
        # as the budgeted BFS, without the scan.  Otherwise search from the
        # lower-degree side: a small detached fragment empties the queue (a
        # cheap, definitive "no") where the giant side would burn the whole
        # budget.
        if len(adj[u]) and len(adj[v]):
            source, sink = (u, v) if len(adj[u]) <= len(adj[v]) else (v, u)
            if _locally_connected(graph, source, sink):
                return True
        graph.add_edge(u, v)
    graph.remove_edge(*sampled[0])
    return False
