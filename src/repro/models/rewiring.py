"""Shared rewiring machinery: sorted adjacency, CSR snapshots, proposal blocks.

Every rewiring loop in this package (TriCycLe's exact sequential and batched
engines, TCL's refinement loop, and the speculative distributional engine)
runs on the same three structures:

* :class:`_SortedAdjacency` — mutable sorted neighbour rows with set
  mirrors; uniform neighbour picks are index arithmetic, shared verbatim by
  the sequential and batched proposal paths (bit-identity);
* :class:`_Snapshot` — an immutable CSR image whose directed edge keys
  ``owner * n + neighbour`` are globally sorted; snapshots are *folded
  forward* through a delta overlay with a sort-free vectorized merge;
* :class:`_ProposalBlock` — one window of friend-of-a-friend proposals
  evaluated vectorized against a snapshot, with an O(1)-per-swap delta
  overlay (the exact batched engine's workhorse).

Speculative block rewiring (``equivalence="distributional"``)
-------------------------------------------------------------
:class:`SpeculativeRewiring` trades bit-identity with the scalar swap
sequence for throughput, under the same *distributional* equivalence
contract the orphan repair's vectorized engine established: per-seed
determinism (at a fixed block size), identical exact invariants (edge
count, triangle-target convergence), and closeness of the degree-sequence
and Θ'_F distributions (pinned by ``tests/models/test_tricycle_speculative``).

One round of the engine:

1. draw a block of K proposals against one frozen :class:`_Snapshot`;
2. evaluate every walk vectorized (:func:`evaluate_walks`), filter to the
   viable ones, and pair them positionally with popped oldest edges — the
   pairing is faithful because the exact loop pops exactly one oldest edge
   per consulted viable proposal, accept or reject;
3. compute ``cn_old`` for every popped edge and ``cn_new`` for every
   proposed edge with one batched common-neighbour kernel pass each
   (:func:`repro.graphs.statistics.batched_common_neighbours`), skipping
   proposals whose pessimistic bound ``min(deg u, deg v) < cn_old`` proves
   rejection without probing a single row;
4. apply the verdicts in one in-order O(1)-per-proposal scan: accepts and
   rejects follow the snapshot counts directly (per-proposal staleness is
   the accepted distributional deviation — on hub-dominated graphs nearly
   every proposal shares a node with an earlier commit, so any scheme that
   re-resolves or requeues conflicts serializes the whole round); the only
   rollbacks are proposals whose proposed edge became live mid-round
   (their pops return to the queue front unconsumed) and the tail behind
   the triangle-target stop;
5. fold the snapshot forward and restore ``tau`` to the *exact* triangle
   count of the new edge set: with the round's cancellation guarantees (an
   added edge is never in the old snapshot, a removed edge always is, and
   the sets are disjoint), the gained triangles are exactly the
   new-snapshot triangles containing an added edge and the lost ones the
   old-snapshot triangles containing a removed edge — one batched kernel
   pass per side, plus an inclusion–exclusion correction for triangles
   containing two or three toggled edges.  The same pieces feed an
   attached :class:`~repro.graphs.accel.MetricsAccelerator` in one batch.

The round-delta accounting is order-independent, so ``tau`` is exact at
every round boundary (a stale running estimate places the triangle-target
stop *inside* a round) and the accelerator's maintained tiers survive the
final wholesale adoption.  Only the per-proposal *verdicts* (and the walks
they ride on) consult stale structure — the accepted distributional
deviation, pinned by the closeness suites.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.graphs.attributed import AttributedGraph
from repro.graphs.statistics import batched_common_neighbours
from repro.models.base import EdgeAcceptance
from repro.utils.arrays import (
    directed_keys_to_csr,
    fold_sorted_keys,
    sorted_intersect,
)
from repro.utils.sampling import WeightedSampler

Edge = Tuple[int, int]

#: Proposals evaluated eagerly per snapshot window — also the snapshot
#: refresh cadence: each window boundary folds the accumulated overlay
#: forward.  (A stale-consult-triggered mid-window refresh was measured and
#: rejected: at the accept-dominated bench tiers the O(m) folds cost more
#: than the scalar fallbacks they avoid.)
_EVAL_WINDOW = 16384

#: Default speculation block budget for the distributional engine — the
#: *ceiling* on the round capacity (the floor of the edge-count clamp).
#: The block size trades verdict staleness against per-round fixed costs
#: (the O(m) fold and the kernel call overheads); 4096 won the sweep at the
#: epinions bench tier and small graphs are clamped well below it anyway.
_SPECULATION_BLOCK = 4096

#: Floor of the edge-count-scaled round capacity — below this the
#: vectorized passes cost more than the scalar loop saves.
_MIN_ROUND = 64


class _SortedAdjacency:
    """Mutable adjacency rows kept sorted, with set mirrors.

    Seeded from the graph's CSR view (whose rows are sorted), and kept
    sorted through the rewiring loop's mutations with ``bisect`` insertions
    and deletions — O(degree) C-level memmoves.  Sorted rows buy two things:

    * uniform neighbour picks are plain index arithmetic, shared verbatim by
      the sequential and batched proposal paths (bit-identity);
    * the rows concatenate into a CSR snapshot whose directed keys are
      already globally sorted — no argsort pass.

    The lazily-built set mirrors give the batched engine O(1) membership
    probes and O(min d) common-neighbour counts without any graph access.
    """

    __slots__ = ("lists", "sets")

    def __init__(self, graph: AttributedGraph) -> None:
        indptr, indices = graph.csr()
        flat = indices.tolist()
        bounds = indptr.tolist()
        self.lists: List[List[int]] = [
            flat[bounds[v]:bounds[v + 1]] for v in range(graph.num_nodes)
        ]
        self.sets: Optional[List[Set[int]]] = None

    def ensure_sets(self) -> None:
        """Build the set mirrors (the batched engine's probe structure)."""
        if self.sets is None:
            self.sets = [set(row) for row in self.lists]

    def add(self, u: int, v: int) -> None:
        insort(self.lists[u], v)
        insort(self.lists[v], u)
        if self.sets is not None:
            self.sets[u].add(v)
            self.sets[v].add(u)

    def remove(self, u: int, v: int) -> None:
        row = self.lists[u]
        del row[bisect_left(row, v)]
        row = self.lists[v]
        del row[bisect_left(row, u)]
        if self.sets is not None:
            self.sets[u].discard(v)
            self.sets[v].discard(u)

    def has(self, u: int, v: int) -> bool:
        """Membership probe against the set mirror (O(1))."""
        return v in self.sets[u]

    def count_common(self, u: int, v: int) -> int:
        """``|Γ(u) ∩ Γ(v)|`` via the set mirrors."""
        a, b = self.sets[u], self.sets[v]
        if len(a) > len(b):
            a, b = b, a
        return len(a & b)

    def pick(self, v: int, unit: float) -> Optional[int]:
        """Uniform neighbour of ``v`` driven by a pre-drawn unit uniform."""
        row = self.lists[v]
        if not row:
            return None
        return row[min(int(unit * len(row)), len(row) - 1)]

    def pick_excluding(self, v: int, excluded: int, unit: float
                       ) -> Optional[int]:
        """Uniform element of ``Γ(v) \\ {excluded}`` in O(log d).

        Skips the excluded element by index arithmetic instead of rejection,
        so the draw stays exactly uniform over the remaining neighbours.
        """
        row = self.lists[v]
        size = len(row)
        position = bisect_left(row, excluded)
        if position >= size or row[position] != excluded:
            if size == 0:
                return None
            return row[min(int(unit * size), size - 1)]
        if size == 1:
            return None
        index = min(int(unit * (size - 1)), size - 2)
        if index >= position:
            index += 1
        return row[index]


class _Snapshot:
    """An immutable CSR image of the rewiring structure.

    ``keys`` holds the directed edge keys ``owner * n + neighbour`` in
    globally sorted order; ``flat``/``indptr``/``lengths`` are the matching
    CSR arrays.  Snapshots are built once from the graph and then *folded
    forward* through a block's delta overlay — a sort-free vectorized merge
    — so no Python-level row flattening ever happens inside the loop.
    """

    __slots__ = ("n", "indptr", "flat", "lengths", "keys")

    def __init__(self, n: int, indptr: np.ndarray, flat: np.ndarray,
                 lengths: np.ndarray, keys: np.ndarray) -> None:
        self.n = n
        self.indptr = indptr
        self.flat = flat
        self.lengths = lengths
        self.keys = keys

    @classmethod
    def from_graph(cls, graph: AttributedGraph) -> "_Snapshot":
        # The graph's CSR arrays carry the narrow storage-ladder dtype;
        # ``lengths`` is widened once so the engine's signed arithmetic
        # (degree-minus-one walks, degree deltas) can never wrap.
        indptr, flat = graph.csr()
        n = graph.num_nodes
        lengths = np.diff(np.asarray(indptr, dtype=np.int64))
        keys = np.repeat(np.arange(n, dtype=np.int64), lengths) * n + flat
        return cls(n, indptr, flat, lengths, keys)

    @classmethod
    def from_directed_keys(cls, n: int, keys: np.ndarray) -> "_Snapshot":
        indptr, flat = directed_keys_to_csr(n, keys)
        return cls(n, indptr, flat,
                   np.diff(np.asarray(indptr, dtype=np.int64)), keys)

    def contains(self, u: int, v: int) -> bool:
        """Whether edge ``{u, v}`` exists in this snapshot (scalar probe)."""
        keys = self.keys
        if keys.size == 0:
            return False
        key = u * self.n + v
        position = int(np.searchsorted(keys, key))
        return position < keys.size and int(keys[position]) == key

    def folded(self, added_canonical: Set[int], removed_canonical: Set[int]
               ) -> "_Snapshot":
        """Fold a canonical-key overlay into a fresh snapshot (O(m + δ))."""
        if not added_canonical and not removed_canonical:
            return self
        n = self.n

        def directed(canonical: Set[int]) -> np.ndarray:
            keys = np.fromiter(canonical, dtype=np.int64, count=len(canonical))
            both = np.concatenate((keys, (keys % n) * n + keys // n))
            both.sort()
            return both

        return _Snapshot.from_directed_keys(n, fold_sorted_keys(
            self.keys, directed(added_canonical), directed(removed_canonical)
        ))


def evaluate_walks(snapshot: _Snapshot, vi: np.ndarray, unit_one: np.ndarray,
                   unit_two: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized friend-of-a-friend walks against a frozen snapshot.

    Replicates :meth:`_SortedAdjacency.pick` /
    :meth:`_SortedAdjacency.pick_excluding` index arithmetic exactly
    (bit-identity of the exact batched engine rests on this).  Returns
    ``(vk, vj, has_edge)``: the hop endpoints with ``-1`` marking dead walks
    (no neighbour, or ``Γ(vk) \\ {vi}`` empty), and the snapshot adjacency
    probe for the surviving ``{vi, vj}`` pairs.
    """
    n = snapshot.n
    indptr, flat = snapshot.indptr, snapshot.flat
    lengths, sorted_keys = snapshot.lengths, snapshot.keys
    size = int(vi.size)
    total = int(flat.size)
    vk_out = np.full(size, -1, dtype=np.int64)
    vj_out = np.full(size, -1, dtype=np.int64)
    if total == 0 or size == 0:
        return vk_out, vj_out, np.zeros(size, dtype=bool)

    # Hop one: vk = Γ(vi)[min(int(u1 · |Γ(vi)|), |Γ(vi)| − 1)], exactly
    # as _SortedAdjacency.pick computes it.
    deg_vi = lengths[vi]
    reachable = deg_vi > 0
    hop_one = np.minimum((unit_one * deg_vi).astype(np.int64), deg_vi - 1)
    # Unreachable rows may sit past the last flat entry (indptr[vi] ==
    # total), so the gather index must be masked, not just the result.
    # The gathered ids are widened before the key packing below — ``flat``
    # carries the narrow storage dtype.
    vk = np.asarray(
        flat[np.where(reachable, indptr[vi] + hop_one, 0)], dtype=np.int64
    )
    vk_out[reachable] = vk[reachable]

    # Hop two replicates pick_excluding: vi is always a member of Γ(vk)
    # on the snapshot (symmetry), and its position inside the sorted row
    # is its global key rank minus the row start.
    position = np.searchsorted(sorted_keys, vk * n + vi) - indptr[vk]
    size_k = lengths[vk]
    valid = reachable & (size_k > 1)
    hop_two = np.minimum(
        (unit_two * (size_k - 1)).astype(np.int64),
        np.maximum(size_k - 2, 0),
    )
    hop_two = hop_two + (hop_two >= position)
    vj = np.asarray(
        flat[np.where(valid, indptr[vk] + hop_two, 0)], dtype=np.int64
    )
    vj_out[valid] = vj[valid]

    # Adjacency probe for the surviving pairs, against the sorted
    # snapshot keys.
    pair_keys = vi * n + vj
    probe = np.minimum(np.searchsorted(sorted_keys, pair_keys), total - 1)
    has_edge = valid & (sorted_keys[probe] == pair_keys)
    return vk_out, vj_out, has_edge


class _ProposalBlock:
    """One window of rewiring proposals with an incrementally patched snapshot.

    Construction evaluates walk endpoints and adjacency probes for the whole
    window vectorized against an immutable :class:`_Snapshot`
    (:func:`evaluate_walks`); common-neighbour counts come from vectorized
    merges of the snapshot rows (:meth:`pair_cn`).  Accepted swaps are
    **patched in as a delta overlay** (O(1) per swap):

    * ``mutated`` — nodes whose adjacency rows changed since the snapshot;
      a precomputed answer is consulted only while its row dependencies
      (``vi`` for hop one, ``vk`` for hop two, ``{vi, vj}`` for the count)
      are untouched, which makes it exactly equal to the live value;
    * added/removed canonical edge keys — an O(1) correction that keeps the
      adjacency *probe* exact for every proposal, mutated rows or not, and
      the raw material for folding the snapshot forward.

    :meth:`next_consult` skips provably non-viable proposals in bulk: the
    next snapshot-viable candidate bounds a skip range, and the range is
    verified against the mutated-node mask with three gathers.  Skip ranges
    are disjoint across the block's lifetime, so the verification totals
    O(block).

    The exactness argument is the same as the original dirty-set design —
    every answer depends only on the rows of the nodes involved — but the
    overlay turns "row touched → per-proposal fallback forever" into
    "row touched → O(1) patch, everything else stays vectorized".
    """

    __slots__ = ("_n", "_size", "_vi", "_vk", "_vj", "_has_edge",
                 "_vi_list", "_vk_list", "_vj_list", "_edge_list",
                 "_candidates", "_candidate_pos", "_mut_bytes", "_mut_view",
                 "_snapshot", "num_mutated", "added", "removed")

    def __init__(self, snapshot: _Snapshot, vi_block: np.ndarray,
                 unit_block: np.ndarray) -> None:
        size = int(vi_block.size)
        self._n = snapshot.n
        self._size = size
        self._snapshot = snapshot
        self._vi = vi_block.astype(np.int64, copy=False)
        self._vk, self._vj, self._has_edge = evaluate_walks(
            snapshot, self._vi,
            unit_block[:, 0] if size else np.empty(0),
            unit_block[:, 1] if size else np.empty(0),
        )
        self._candidate_pos = 0
        # Mutated-node mask: a bytearray for ~O(50ns) scalar writes and
        # probes, with a NumPy view over the same buffer for the skip-range
        # gathers.
        self._mut_bytes = bytearray(max(snapshot.n, 1))
        self._mut_view = np.frombuffer(self._mut_bytes, dtype=np.uint8)
        self.num_mutated = 0
        self.added: Set[int] = set()
        self.removed: Set[int] = set()
        # List mirrors for the scalar consult path (a NumPy scalar unbox per
        # read would dominate the per-consult cost).
        self._vi_list = self._vi.tolist()
        self._vk_list = self._vk.tolist()
        self._vj_list = self._vj.tolist()
        self._edge_list = self._has_edge.tolist()
        # Static candidates: proposals viable *on the snapshot* — the second
        # hop exists and the proposed edge is absent (pick_excluding
        # guarantees vj != vi).  Proposals whose verdict could have flipped
        # since necessarily depend on a mutated row and are caught by the
        # skip-range verification in next_consult.
        self._candidates: List[int] = np.flatnonzero(
            (self._vj >= 0) & ~self._has_edge
        ).tolist()

    @property
    def size(self) -> int:
        """Number of proposals this window evaluates."""
        return self._size

    def folded_snapshot(self) -> _Snapshot:
        """The snapshot with this window's overlay folded in (current state)."""
        return self._snapshot.folded(self.added, self.removed)

    # ------------------------------------------------------------------
    # Bulk skipping and incremental maintenance
    # ------------------------------------------------------------------
    def next_consult(self, cursor: int) -> int:
        """First index ≥ ``cursor`` that needs Python attention (or size).

        That is the next *static* candidate — viable on the snapshot — or,
        before it, the first skipped proposal whose row dependencies touch a
        mutated node (its precomputed no-op verdict can no longer be
        trusted).
        """
        candidates = self._candidates
        position = self._candidate_pos
        while position < len(candidates) and candidates[position] < cursor:
            position += 1
        self._candidate_pos = position
        stop = candidates[position] if position < len(candidates) else self._size
        if stop > cursor and self.num_mutated:
            # (_vk/_vj hold -1 for dead proposals; index -1 aliases node
            # n-1, which can only spuriously *consult* a proposal — the
            # consult path re-derives exact answers either way.)
            if stop - cursor <= 8:
                mask = self._mut_bytes
                vi, vk, vj = self._vi_list, self._vk_list, self._vj_list
                for probe in range(cursor, stop):
                    if mask[vi[probe]] or mask[vk[probe]] or mask[vj[probe]]:
                        return probe
            else:
                # Geometric chunks: the scan stops at the first hit, so a
                # long candidate gap dense with mutated-row proposals costs
                # O(first-hit distance) per consult instead of re-gathering
                # the whole remaining gap every time.
                mutated = self._mut_view
                chunk = 64
                start = cursor
                while start < stop:
                    end = min(start + chunk, stop)
                    hit = mutated[self._vi[start:end]]
                    hit |= mutated[self._vk[start:end]]
                    hit |= mutated[self._vj[start:end]]
                    offset = int(np.argmax(hit))
                    if hit[offset]:
                        return start + offset
                    start = end
                    chunk *= 4
        return stop

    def is_mutated(self, node: int) -> bool:
        """Whether ``node``'s row changed since this window's snapshot."""
        return self._mut_bytes[node] != 0

    def note_swap(self, removed_edge: Edge, added_edge: Optional[Edge]) -> None:
        """Patch one accepted swap into the snapshot overlay — O(1).

        Later proposals depending on a mutated row are re-armed lazily by
        :meth:`next_consult`; everything else keeps its (still exact)
        precomputed answers.
        """
        n = self._n
        mask = self._mut_bytes
        vq, vr = removed_edge
        key = vq * n + vr if vq < vr else vr * n + vq
        if key in self.added:
            self.added.discard(key)
        else:
            self.removed.add(key)
        mask[vq] = 1
        mask[vr] = 1
        if added_edge is not None:
            va, vb = added_edge
            akey = va * n + vb if va < vb else vb * n + va
            if akey in self.removed:
                self.removed.discard(akey)
            else:
                self.added.add(akey)
            mask[va] = 1
            mask[vb] = 1
        self.num_mutated += 1

    def edge_exists(self, index: int, vi: int, vj: int) -> bool:
        """Current existence of edge ``{vi, vj}`` for an unmutated proposal.

        The snapshot probe corrected by the O(1) overlay of edges added or
        removed since — exact for *every* proposal, mutated rows or not.
        """
        key = vi * self._n + vj if vi < vj else vj * self._n + vi
        if key in self.added:
            return True
        if key in self.removed:
            return False
        return self._edge_list[index]

    def pair_cn(self, u: int, v: int) -> int:
        """Snapshot common-neighbour count of an arbitrary pair.

        Exact for the live structure while neither row is mutated.  A
        vectorized merge of the two sorted snapshot rows — the win over the
        set intersection grows with the row sizes, so callers gate it on
        :meth:`row_length`.
        """
        snapshot = self._snapshot
        indptr, flat = snapshot.indptr, snapshot.flat
        return int(sorted_intersect(
            flat[indptr[u]:indptr[u + 1]],
            flat[indptr[v]:indptr[v + 1]],
        ).size)

    def row_length(self, node: int) -> int:
        """Snapshot degree of ``node``."""
        return int(self._snapshot.lengths[node])

    # ------------------------------------------------------------------
    # Precomputed answers
    # ------------------------------------------------------------------
    def vk(self, index: int) -> Optional[int]:
        """First-hop endpoint of proposal ``index`` (``None``: no neighbour)."""
        value = self._vk_list[index]
        return None if value < 0 else value

    def vj(self, index: int) -> Optional[int]:
        """Second-hop endpoint (``None``: Γ(vk) \\ {vi} was empty)."""
        value = self._vj_list[index]
        return None if value < 0 else value


class SpeculativeRewiring:
    """Block-speculative TriCycLe rewiring under the distributional contract.

    See the module docstring for the round structure.  All per-proposal work
    is either vectorized (walks, viability, common-neighbour counts) or O(1)
    bookkeeping (pops, live-set toggles); there is no scalar fallback path.
    Verdicts are computed against the round's frozen snapshot — the accepted
    distributional deviation — while :attr:`tau` is restored to the *exact*
    triangle count of the evolving edge set at every round boundary through
    an order-independent inclusion–exclusion over the round's toggles.

    The engine owns the structural state for the duration of :meth:`run` —
    the graph object is untouched until the final vectorized adoption — and
    exposes its telemetry through :attr:`stats` plus the invariant-bearing
    internals (:attr:`snapshot`, :attr:`live_keys`, :attr:`tau`) that the
    property suite checks between rounds.
    """

    def __init__(self, graph: AttributedGraph, edge_age: Deque[Edge],
                 tau: int, target: int, max_iterations: int,
                 sampler: WeightedSampler, generator: np.random.Generator,
                 acceptance: Optional[EdgeAcceptance],
                 block_size: int = _SPECULATION_BLOCK,
                 accel=None) -> None:
        self._graph = graph
        self._edge_age = edge_age
        self.tau = int(tau)
        self._target = int(target)
        self._max_iterations = int(max_iterations)
        self._sampler = sampler
        self._generator = generator
        self._acceptance = acceptance
        self._block_size = max(1, int(block_size))
        # Staleness bound: a round much larger than a small graph's
        # convergence horizon only buys verdict staleness, so the capacity
        # is the block budget clamped to an edge-count fraction.
        self._capacity = max(
            _MIN_ROUND, min(self._block_size, graph.num_edges // 8)
        )
        self._accel = accel
        n = graph.num_nodes
        self._n = n
        self.snapshot = _Snapshot.from_graph(graph)
        keys = self.snapshot.keys
        #: Canonical (u < v) keys of every live edge — the O(1) probe behind
        #: mid-round duplicate-edge detection and the fold overlays.
        self.live_keys: Set[int] = set(
            keys[(keys // n) < (keys % n)].tolist()
        )
        self._swapped = False
        self.stats: Dict[str, int] = {
            "rounds": 0,
            "proposals": 0,
            "viable": 0,
            "acceptance_filtered": 0,
            "paired": 0,
            "pruned": 0,
            "accepted": 0,
            "rejected": 0,
            "conflicts": 0,
            "rollbacks": 0,
            "folds": 0,
        }

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Rewire until the triangle target or the iteration budget is hit."""
        graph = self._graph
        if graph.num_edges == 0 or self.tau >= self._target:
            return
        iterations = 0
        while self.tau < self._target and iterations < self._max_iterations:
            consumed, dried = self._run_round(self._max_iterations - iterations)
            iterations += max(consumed, 1)
            if dried:
                break
        if self._swapped:
            if self._accel is not None:
                self._accel.expect_maintained_adoption()
            graph._adopt_directed_keys(self.snapshot.keys, graph.num_edges)

    # ------------------------------------------------------------------
    # One speculative round
    # ------------------------------------------------------------------
    def _run_round(self, remaining: int) -> Tuple[int, bool]:
        """Evaluate, pair, commit, and fold one proposal block.

        Returns ``(consumed, dried)``: how many proposals were consumed from
        the iteration budget, and whether the edge-age queue ran dry (which
        ends rewiring, matching the exact loop).
        """
        generator = self._generator
        n = self._n
        snapshot = self.snapshot
        stats = self.stats

        # 1. Draw the round.  The RNG consumption per round is a
        #    deterministic function of (seed, block size), which is what
        #    makes runs reproducible.
        capacity = min(self._capacity, remaining)
        vi = self._sampler.sample_many(capacity, generator) \
            .astype(np.int64, copy=False)
        units = generator.random((capacity, 2))
        round_size = int(vi.size)
        stats["rounds"] += 1
        stats["proposals"] += round_size

        # 2. Vectorized walk evaluation and viability against the frozen
        #    snapshot; the attribute acceptance filter consumes one uniform
        #    per viable proposal, like the exact loop.
        _vk, vj, has_edge = evaluate_walks(snapshot, vi, units[:, 0],
                                           units[:, 1])
        viable = np.flatnonzero((vj >= 0) & ~has_edge)
        stats["viable"] += int(viable.size)
        if self._acceptance is not None and viable.size:
            probabilities = self._acceptance.pair_probabilities(
                vi[viable], vj[viable]
            )
            draws = generator.random(viable.size)
            passed = draws <= probabilities
            stats["acceptance_filtered"] += int(viable.size - passed.sum())
            paired_pos = viable[passed]
        else:
            paired_pos = viable

        # 3. Positional pairing with the oldest live edges: every consulted
        #    viable proposal pops exactly one oldest edge in the exact loop
        #    (rejects re-append it), so pairing up front is faithful.  The
        #    queue holds exactly the live edges at every round boundary
        #    (swaps preserve the edge count; rejects and rollbacks restore
        #    their pops) — an invariant the property suite pins — so the
        #    pops need no per-edge liveness probe.
        edge_age = self._edge_age
        requested = int(paired_pos.size)
        pops: List[Edge] = [
            edge_age.popleft()
            for _ in range(min(requested, len(edge_age)))
        ]
        dried = len(pops) < requested
        paired = len(pops)
        paired_pos = paired_pos[:paired]
        stats["paired"] += paired
        if paired == 0:
            return round_size, dried

        # 4. Batched common-neighbour counts: cn_old for every popped edge,
        #    cn_new for every proposed pair — with the pessimistic bound
        #    min(deg vi, deg vj) < cn_old skipping provably-rejected
        #    proposals before a single row is probed.
        popped = np.fromiter(
            (node for pop in pops for node in pop),
            dtype=np.int64, count=2 * paired,
        ).reshape(paired, 2)
        vq = np.minimum(popped[:, 0], popped[:, 1])
        vr = np.maximum(popped[:, 0], popped[:, 1])
        pa = vi[paired_pos]
        pb = vj[paired_pos]
        cn_old = batched_common_neighbours(
            n, snapshot.indptr, snapshot.flat, snapshot.keys, vq, vr
        )
        pruned = np.minimum(snapshot.lengths[pa], snapshot.lengths[pb]) \
            < cn_old
        stats["pruned"] += int(pruned.sum())
        cn_new = batched_common_neighbours(
            n, snapshot.indptr, snapshot.flat, snapshot.keys, pa, pb,
            skip=pruned,
        )

        # 5. In-order commit scan with the batch verdicts, then the fold
        #    plus the exact round-delta triangle accounting.
        tau_before = self.tau
        consumed, added, removed, committed = self._commit_scan(
            paired_pos, pa, pb, vq, vr, pops, cn_old, cn_new, pruned,
            round_size,
        )
        if added.shape[0]:
            self._fold_round(snapshot, added, removed, tau_before,
                             cn_old[committed], cn_new[committed])
        return consumed, dried

    def _commit_scan(self, paired_pos: np.ndarray, pa: np.ndarray,
                     pb: np.ndarray, vq: np.ndarray, vr: np.ndarray,
                     pops: List[Edge], cn_old: np.ndarray,
                     cn_new: np.ndarray, pruned: np.ndarray,
                     round_size: int
                     ) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray]:
        """Apply the batch verdicts in serialized order — without a loop.

        The serialization a scalar scan would produce is reconstructed
        array-wise: the first verdict-accepted proposal of each proposed
        key commits; any later proposal of the same key is a mid-round
        collision and rolls back (its pop returns to the queue front
        unconsumed); the triangle-target stop sits at the first proposal
        after the stale running estimate crosses the target, and everything
        behind it rolls back.  Rejects re-append their pop to the queue
        back in scan order, interleaved with the commits' new edges.  The
        running estimate exists only to place the stop inside the round;
        the exact count is restored at the fold.
        """
        n = self._n
        target = self._target
        tau_before = self.tau
        paired = len(pops)
        aa = np.minimum(pa, pb)
        bb = np.maximum(pa, pb)
        ab_keys = aa * n + bb
        verdicts = ~pruned & (cn_new >= cn_old)
        candidates = np.flatnonzero(verdicts)

        # First accepted proposal per proposed key commits (stable sort
        # keeps scan order within each key run).
        order = np.argsort(ab_keys[candidates], kind="stable")
        sorted_keys = ab_keys[candidates][order]
        sorted_idx = candidates[order]
        firsts = np.ones(sorted_idx.size, dtype=bool)
        firsts[1:] = sorted_keys[1:] != sorted_keys[:-1]
        provisional = np.sort(sorted_idx[firsts])

        # Triangle-target stop placement on the stale running estimate.
        deltas = (cn_new - cn_old)[provisional]
        running = tau_before + np.cumsum(deltas)
        crossed = np.flatnonzero(running >= target)
        stop_proposal: Optional[int] = None
        committed = provisional
        est_tau = int(running[-1]) if provisional.size else tau_before
        if crossed.size:
            cross = int(crossed[0])
            committed = provisional[:cross + 1]
            est_tau = int(running[cross])
            next_proposal = int(provisional[cross]) + 1
            if next_proposal < paired:
                stop_proposal = next_proposal
        horizon = stop_proposal if stop_proposal is not None else paired

        # Mid-round collisions: proposals (whatever their verdict) whose
        # proposed key matches an earlier commit roll back.
        conflict = np.zeros(horizon, dtype=bool)
        if committed.size and horizon:
            comm_order = np.argsort(ab_keys[committed])
            comm_keys = ab_keys[committed][comm_order]
            comm_idx = committed[comm_order]
            position = np.searchsorted(comm_keys, ab_keys[:horizon])
            position[position >= comm_keys.size] = comm_keys.size - 1
            matched = comm_keys[position] == ab_keys[:horizon]
            conflict = matched & (comm_idx[position] < np.arange(horizon))
        committed_mask = np.zeros(horizon, dtype=bool)
        committed_mask[committed] = True
        reject_mask = ~verdicts[:horizon] & ~conflict

        # Queue appends in scan order: commits push their new edge, rejects
        # re-append their pop.
        keep = committed_mask | reject_mask
        out_a = np.where(committed_mask, aa[:horizon], vq[:horizon])[keep]
        out_b = np.where(committed_mask, bb[:horizon], vr[:horizon])[keep]
        edge_age = self._edge_age
        edge_age.extend(zip(out_a.tolist(), out_b.tolist()))

        # Rolled-back pops return to the queue front in their original age
        # order — they are still the oldest live edges.
        restore = [pops[i] for i in np.flatnonzero(conflict).tolist()]
        restore.extend(pops[horizon:])
        if restore:
            edge_age.extendleft(reversed(restore))

        removed = np.stack((vq[committed], vr[committed]), axis=1)
        added = np.stack((aa[committed], bb[committed]), axis=1)
        live = self.live_keys
        live.difference_update(
            (removed[:, 0] * n + removed[:, 1]).tolist()
        )
        live.update(ab_keys[committed].tolist())

        stats = self.stats
        stats["accepted"] += int(committed.size)
        stats["rejected"] += int(reject_mask.sum())
        stats["conflicts"] += int(conflict.sum())
        stats["rollbacks"] += len(restore)
        # Stale running estimate — the fold overwrites it with the exact
        # count (a round with no commits leaves it untouched: the estimate
        # only moves on accepts).
        self.tau = est_tau
        consumed = round_size
        if stop_proposal is not None:
            consumed = max(int(paired_pos[stop_proposal]), 1)
        return consumed, added, removed, committed

    # ------------------------------------------------------------------
    # Fold + exact round-delta accounting
    # ------------------------------------------------------------------
    def _fold_round(self, snapshot: _Snapshot, added: np.ndarray,
                    removed: np.ndarray, tau_before: int,
                    lost_stale: np.ndarray,
                    gained_stale: np.ndarray) -> None:
        """Fold the round's toggles forward and restore exactness.

        The triangle delta of a round is order-independent: with the
        cancellation guarantees (an added edge is never in the old snapshot,
        a removed edge always is, and the two sets are disjoint), it is a
        pure function of the old snapshot and the toggle sets.  The fast
        path (:meth:`_signed_round_delta`) reuses the verdict kernels'
        stale counts and pays only a wedge-pair enumeration over the
        round's toggles — no extra common-neighbour kernel at all.  When an
        attached accelerator maintains per-node triangle counts it needs
        the actual member lists (lost triangles vs the old snapshot,
        gained vs the new), so that path runs the collect-members kernels
        plus the E1-side inclusion–exclusion corrections
        (:meth:`_pair_triangles`); both paths produce the identical exact
        delta.
        """
        n = self._n
        stats = self.stats
        self._swapped = True
        added_keys = added[:, 0] * n + added[:, 1]
        removed_keys = removed[:, 0] * n + removed[:, 1]

        folded = snapshot.folded(set(added_keys.tolist()),
                                 set(removed_keys.tolist()))
        self.snapshot = folded
        stats["folds"] += 1

        accel = self._accel
        feed = accel is not None and accel.maintains_structure
        need_members = feed and accel.tracks_triangles
        if need_members:
            lost_counts, lost_members, lost_indptr = \
                batched_common_neighbours(
                    n, snapshot.indptr, snapshot.flat, snapshot.keys,
                    removed[:, 0], removed[:, 1], collect_members=True,
                )
            gained_counts, gained_members, gained_indptr = \
                batched_common_neighbours(
                    n, folded.indptr, folded.flat, folded.keys,
                    added[:, 0], added[:, 1], collect_members=True,
                )
            removed_over, removed_triples = self._pair_triangles(
                removed, snapshot, np.sort(removed_keys)
            )
            added_over, added_triples = self._pair_triangles(
                added, folded, np.sort(added_keys)
            )
            gained = int(gained_counts.sum()) - len(added_over) \
                + len(added_triples)
            lost = int(lost_counts.sum()) - len(removed_over) \
                + len(removed_triples)
            # Replace the stale running estimate with the exact delta.
            self.tau = tau_before + gained - lost
        else:
            # The verdict kernels already counted every committed edge
            # against the old snapshot — those ARE the single-toggle terms.
            self.tau = tau_before + int(gained_stale.sum()) \
                - int(lost_stale.sum()) \
                + self._signed_round_delta(added, removed, snapshot)
            empty = np.empty((0, 3), dtype=np.int64)
            removed_over = removed_triples = empty
            added_over = added_triples = empty
            lost_members = lost_indptr = None
            gained_members = gained_indptr = None
        if feed:
            self._feed_accelerator(
                snapshot, removed, added,
                lost_members, lost_indptr, gained_members, gained_indptr,
                removed_over, removed_triples, added_over, added_triples,
            )

    @staticmethod
    def _enumerate_wedges(edges: np.ndarray
                          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                     np.ndarray, np.ndarray]:
        """All unordered pairs of distinct edges sharing an endpoint.

        Fully vectorized: both orientations of every edge are grouped by
        their centre node, and the within-group pairs come from a
        repeat/offset expansion — the element at local position ``i`` of a
        ``k``-sized group opens ``k - 1 - i`` pairs, its partners being the
        elements right after it.  Returns ``(x, b, c, e1, e2)``: the shared
        endpoint, the two far endpoints, and the row indices into ``edges``
        of the two wedge legs, one entry per pair.
        """
        count = edges.shape[0]
        centers = np.concatenate((edges[:, 0], edges[:, 1]))
        partners = np.concatenate((edges[:, 1], edges[:, 0]))
        ids = np.concatenate((np.arange(count), np.arange(count)))
        order = np.argsort(centers, kind="stable")
        centers = centers[order]
        partners = partners[order]
        ids = ids[order]
        boundaries = np.flatnonzero(np.diff(centers)) + 1
        starts = np.concatenate(([0], boundaries))
        sizes = np.diff(np.concatenate((starts, [centers.size])))
        group_start = np.repeat(starts, sizes)
        local = np.arange(centers.size) - group_start
        repeats = np.repeat(sizes, sizes) - 1 - local
        total = int(repeats.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty, empty, empty
        first = np.repeat(np.arange(centers.size), repeats)
        offsets = np.arange(total) \
            - np.repeat(np.cumsum(repeats) - repeats, repeats)
        second = first + 1 + offsets
        return (centers[first], partners[first], partners[second],
                ids[first], ids[second])

    def _signed_round_delta(self, added: np.ndarray, removed: np.ndarray,
                            snapshot: _Snapshot) -> int:
        """Multi-toggle triangle terms of the round delta, vs E0 only.

        Expanding ``[e ∈ E1] = [e ∈ E0] + σ(e)`` (σ = +1 added, −1
        removed, 0 untoggled) over every node triple gives the exact
        round delta

            Δτ = Σ_t σ(t)·cn_E0(t)
               + Σ_{toggled wedges} σ(t1)·σ(t2)·[closing edge ∈ E0]
               + Σ_{toggled triples} σ(t1)·σ(t2)·σ(t3),

        where the single-toggle sum is exactly the verdict kernels' stale
        counts, already in hand.  This method returns the wedge and triple
        sums: a pair enumeration over the round's toggles plus two
        searchsorted probes — no common-neighbour kernel.  Toggled triples
        (three toggled node pairs closing a triangle, whatever their E0
        membership) are counted once each, from the canonical centre (the
        triple's minimum node).
        """
        if added.shape[0] + removed.shape[0] < 2:
            return 0
        n = self._n
        edges = np.concatenate((added, removed), axis=0)
        signs = np.concatenate((
            np.ones(added.shape[0], dtype=np.int64),
            -np.ones(removed.shape[0], dtype=np.int64),
        ))
        x, b, c, e1, e2 = self._enumerate_wedges(edges)
        if x.size == 0:
            return 0
        products = signs[e1] * signs[e2]
        third_keys = b * n + c
        keys = snapshot.keys
        positions = np.searchsorted(keys, third_keys)
        np.minimum(positions, max(keys.size - 1, 0), out=positions)
        in_e0 = (keys[positions] == third_keys) if keys.size \
            else np.zeros(third_keys.size, dtype=bool)
        pair_sum = int(products[in_e0].sum())
        # Only canonical-centre wedges (x minimal) can open a triple row, so
        # the toggled-set probe runs on a third of the pairs.
        canonical_rows = (x < b) & (x < c)
        cb = b[canonical_rows]
        cc = c[canonical_rows]
        toggled_keys = edges[:, 0] * n + edges[:, 1]
        t_order = np.argsort(toggled_keys)
        t_sorted = toggled_keys[t_order]
        canonical = np.where(cb < cc, cb * n + cc, cc * n + cb)
        pos = np.searchsorted(t_sorted, canonical)
        np.minimum(pos, t_sorted.size - 1, out=pos)
        is_third_toggled = t_sorted[pos] == canonical
        triple_sum = int(
            (products[canonical_rows][is_third_toggled]
             * signs[t_order[pos[is_third_toggled]]]).sum()
        )
        return pair_sum + triple_sum

    def _pair_triangles(self, edges: np.ndarray, snapshot: _Snapshot,
                        toggled_keys: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """Triangles containing two or three of one toggle set's edges.

        Enumerates, per shared endpoint, every unordered pair of toggled
        edges and probes the closing third edge against ``snapshot``.
        Returns ``(overcounts, triples)``: the ``(t, 3)`` node arrays of
        triangles counted once per contained pair (every multi-toggle
        triangle, once per C(k, 2) pairs) and of triangles whose three
        edges are all toggled (one canonical row each — the row whose
        shared endpoint is the triangle's minimum node).  These are the
        E1-side inclusion–exclusion corrections the accelerator feed
        needs; the kernel-free tau fast path uses
        :meth:`_signed_round_delta` instead.
        """
        empty = np.empty((0, 3), dtype=np.int64)
        if edges.shape[0] < 2:
            return empty, empty
        n = self._n
        x, b, c, _, _ = self._enumerate_wedges(edges)
        if x.size == 0:
            return empty, empty
        third_keys = b * n + c
        keys = snapshot.keys
        positions = np.searchsorted(keys, third_keys)
        positions[positions >= keys.size] = keys.size - 1 if keys.size else 0
        closed = keys.size > 0
        hits = (keys[positions] == third_keys) if closed \
            else np.zeros(third_keys.size, dtype=bool)
        if not hits.any():
            return empty, empty
        x = x[hits]
        b = b[hits]
        c = c[hits]
        overcounts = np.stack((x, b, c), axis=1)
        canonical_third = np.where(b < c, b * n + c, c * n + b)
        positions = np.searchsorted(toggled_keys, canonical_third)
        positions[positions >= toggled_keys.size] = \
            toggled_keys.size - 1 if toggled_keys.size else 0
        in_toggled = toggled_keys[positions] == canonical_third \
            if toggled_keys.size else np.zeros(canonical_third.size,
                                               dtype=bool)
        triple_rows = in_toggled & (x < b) & (x < c)
        return overcounts, overcounts[triple_rows]

    # ------------------------------------------------------------------
    # Accelerator feeding
    # ------------------------------------------------------------------
    def _feed_accelerator(self, snapshot: _Snapshot, removed: np.ndarray,
                          added: np.ndarray,
                          lost_members: Optional[np.ndarray],
                          lost_indptr: Optional[np.ndarray],
                          gained_members: Optional[np.ndarray],
                          gained_indptr: Optional[np.ndarray],
                          removed_over: np.ndarray,
                          removed_triples: np.ndarray,
                          added_over: np.ndarray,
                          added_triples: np.ndarray) -> None:
        """Stream the round's committed toggles to the accelerator in bulk.

        Triangle members come from the same round-delta kernels (lost
        triangles vs the old snapshot, gained vs the new), with the
        multi-toggle triangles handed over as explicit correction rows.
        Degree transitions come from the old snapshot's lengths and the
        round's net endpoint deltas — exact even for multi-touched nodes,
        because histogram and wedge updates telescope over intermediate
        degrees.
        """
        accel = self._accel
        changed_nodes = None
        old_degrees = new_degrees = None
        if accel.tracks_degrees:
            deltas = np.zeros(self._n, dtype=np.int64)
            np.add.at(deltas, added.ravel(), 1)
            np.subtract.at(deltas, removed.ravel(), 1)
            changed_nodes = np.unique(
                np.concatenate((added.ravel(), removed.ravel()))
            )
            old_degrees = snapshot.lengths[changed_nodes].astype(np.int64)
            new_degrees = old_degrees + deltas[changed_nodes]
        accel.apply_swap_batch(
            removed, added,
            removed_members=lost_members, removed_indptr=lost_indptr,
            added_members=gained_members, added_indptr=gained_indptr,
            removed_overcounts=removed_over,
            removed_triples=removed_triples,
            added_overcounts=added_over, added_triples=added_triples,
            changed_nodes=changed_nodes, old_degrees=old_degrees,
            new_degrees=new_degrees,
        )
