"""TriCycLe: the paper's triangle-targeting Chung-Lu model (Algorithm 1).

TriCycLe captures both the degree distribution and the clustering of a
social graph using only two statistics that admit accurate DP estimators:
the degree sequence and the triangle count.  Generation proceeds in two
phases:

1. a Chung-Lu seed graph with the desired degree sequence is generated;
2. edges are iteratively rewired — a "friend of a friend" edge is proposed
   (creating at least one new triangle) and the oldest seed edge is retired —
   until the graph contains the target number of triangles.  Replacements
   that would lower the net triangle count are rejected, which guarantees
   progress and termination with the desired count (up to the attempt
   budget).

The orphan extension of Section 3.3 is supported: degree-one nodes can be
excluded from the π distribution and wired up afterwards by
:func:`repro.models.postprocess.post_process_graph`.

Batched proposal evaluation
---------------------------
With ``batch_proposals=True`` the rewiring loop runs on an engine built
around **incrementally maintained CSR snapshots**:

* the live structure is a :class:`_SortedAdjacency` (sorted neighbour rows
  plus set mirrors); the graph object is not touched until the loop ends,
  when the final edge set is adopted back in one vectorized pass;
* proposal blocks evaluate walk endpoints and adjacency probes for a whole
  window in a handful of NumPy passes against an immutable
  :class:`_Snapshot`; common-neighbour counts come from vectorized merges
  of the snapshot rows while the rows are untouched;
* every accepted swap is **patched into the block as a delta overlay** —
  the mutated-node set plus the edge keys added/removed since the snapshot
  — in O(1), instead of funnelling all later proposals through a live
  fallback;
* a snapshot is *folded forward* (previous keys ⊕ overlay, a sort-free
  array merge) whenever a new evaluation window starts, so the vectorized
  answers keep their hit rate across whole blocks;
* proposals that are provably non-viable — no second hop, or the proposed
  edge already exists — are skipped in bulk with zero per-proposal Python
  work; the skip ranges are verified against the mutated-node mask, and
  the ranges are disjoint over a block's lifetime, so verification totals
  O(block), not O(block · swaps).

The batched path is bit-identical to ``batch_proposals=False``: both share
the same sorted-row pick semantics and presampled RNG stream, and every
batched answer equals the live value at the moment it is consulted (pinned
by ``tests/models/test_tricycle.py``).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from typing import Deque, List, Optional, Set, Tuple

import numpy as np

from repro.graphs.attributed import AttributedGraph
from repro.graphs.statistics import triangle_count
from repro.models.base import EdgeAcceptance, StructuralModel
from repro.models.chung_lu import ChungLuModel, build_pi_distribution
from repro.models.postprocess import post_process_graph
from repro.utils.arrays import (
    directed_keys_to_csr,
    fold_sorted_keys,
    sorted_intersect,
)
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.sampling import WeightedSampler

Edge = Tuple[int, int]

#: Proposals evaluated eagerly per snapshot window — also the snapshot
#: refresh cadence: each window boundary folds the accumulated overlay
#: forward.  (A stale-consult-triggered mid-window refresh was measured and
#: rejected: at the accept-dominated bench tiers the O(m) folds cost more
#: than the scalar fallbacks they avoid.)
_EVAL_WINDOW = 16384


class _SortedAdjacency:
    """Mutable adjacency rows kept sorted, with set mirrors.

    Seeded from the graph's CSR view (whose rows are sorted), and kept
    sorted through the rewiring loop's mutations with ``bisect`` insertions
    and deletions — O(degree) C-level memmoves.  Sorted rows buy two things:

    * uniform neighbour picks are plain index arithmetic, shared verbatim by
      the sequential and batched proposal paths (bit-identity);
    * the rows concatenate into a CSR snapshot whose directed keys are
      already globally sorted — no argsort pass.

    The lazily-built set mirrors give the batched engine O(1) membership
    probes and O(min d) common-neighbour counts without any graph access.
    """

    __slots__ = ("lists", "sets")

    def __init__(self, graph: AttributedGraph) -> None:
        indptr, indices = graph.csr()
        flat = indices.tolist()
        bounds = indptr.tolist()
        self.lists: List[List[int]] = [
            flat[bounds[v]:bounds[v + 1]] for v in range(graph.num_nodes)
        ]
        self.sets: Optional[List[Set[int]]] = None

    def ensure_sets(self) -> None:
        """Build the set mirrors (the batched engine's probe structure)."""
        if self.sets is None:
            self.sets = [set(row) for row in self.lists]

    def add(self, u: int, v: int) -> None:
        insort(self.lists[u], v)
        insort(self.lists[v], u)
        if self.sets is not None:
            self.sets[u].add(v)
            self.sets[v].add(u)

    def remove(self, u: int, v: int) -> None:
        row = self.lists[u]
        del row[bisect_left(row, v)]
        row = self.lists[v]
        del row[bisect_left(row, u)]
        if self.sets is not None:
            self.sets[u].discard(v)
            self.sets[v].discard(u)

    def has(self, u: int, v: int) -> bool:
        """Membership probe against the set mirror (O(1))."""
        return v in self.sets[u]

    def count_common(self, u: int, v: int) -> int:
        """``|Γ(u) ∩ Γ(v)|`` via the set mirrors."""
        a, b = self.sets[u], self.sets[v]
        if len(a) > len(b):
            a, b = b, a
        return len(a & b)

    def pick(self, v: int, unit: float) -> Optional[int]:
        """Uniform neighbour of ``v`` driven by a pre-drawn unit uniform."""
        row = self.lists[v]
        if not row:
            return None
        return row[min(int(unit * len(row)), len(row) - 1)]

    def pick_excluding(self, v: int, excluded: int, unit: float
                       ) -> Optional[int]:
        """Uniform element of ``Γ(v) \\ {excluded}`` in O(log d).

        Skips the excluded element by index arithmetic instead of rejection,
        so the draw stays exactly uniform over the remaining neighbours.
        """
        row = self.lists[v]
        size = len(row)
        position = bisect_left(row, excluded)
        if position >= size or row[position] != excluded:
            if size == 0:
                return None
            return row[min(int(unit * size), size - 1)]
        if size == 1:
            return None
        index = min(int(unit * (size - 1)), size - 2)
        if index >= position:
            index += 1
        return row[index]


class _Snapshot:
    """An immutable CSR image of the rewiring structure.

    ``keys`` holds the directed edge keys ``owner * n + neighbour`` in
    globally sorted order; ``flat``/``indptr``/``lengths`` are the matching
    CSR arrays.  Snapshots are built once from the graph and then *folded
    forward* through a block's delta overlay — a sort-free vectorized merge
    — so no Python-level row flattening ever happens inside the loop.
    """

    __slots__ = ("n", "indptr", "flat", "lengths", "keys")

    def __init__(self, n: int, indptr: np.ndarray, flat: np.ndarray,
                 lengths: np.ndarray, keys: np.ndarray) -> None:
        self.n = n
        self.indptr = indptr
        self.flat = flat
        self.lengths = lengths
        self.keys = keys

    @classmethod
    def from_graph(cls, graph: AttributedGraph) -> "_Snapshot":
        indptr, flat = graph.csr()
        n = graph.num_nodes
        lengths = np.diff(indptr)
        keys = np.repeat(np.arange(n, dtype=np.int64), lengths) * n + flat
        return cls(n, indptr, flat, lengths, keys)

    @classmethod
    def from_directed_keys(cls, n: int, keys: np.ndarray) -> "_Snapshot":
        indptr, flat = directed_keys_to_csr(n, keys)
        return cls(n, indptr, flat, np.diff(indptr), keys)

    def folded(self, added_canonical: Set[int], removed_canonical: Set[int]
               ) -> "_Snapshot":
        """Fold a canonical-key overlay into a fresh snapshot (O(m + δ))."""
        if not added_canonical and not removed_canonical:
            return self
        n = self.n

        def directed(canonical: Set[int]) -> np.ndarray:
            keys = np.fromiter(canonical, dtype=np.int64, count=len(canonical))
            both = np.concatenate((keys, (keys % n) * n + keys // n))
            both.sort()
            return both

        return _Snapshot.from_directed_keys(n, fold_sorted_keys(
            self.keys, directed(added_canonical), directed(removed_canonical)
        ))


class _ProposalBlock:
    """One window of rewiring proposals with an incrementally patched snapshot.

    Construction evaluates walk endpoints and adjacency probes for the whole
    window vectorized against an immutable :class:`_Snapshot`;
    common-neighbour counts come from vectorized merges of the snapshot
    rows (:meth:`pair_cn`).  Accepted swaps are **patched in as a
    delta overlay** (O(1) per swap):

    * ``mutated`` — nodes whose adjacency rows changed since the snapshot;
      a precomputed answer is consulted only while its row dependencies
      (``vi`` for hop one, ``vk`` for hop two, ``{vi, vj}`` for the count)
      are untouched, which makes it exactly equal to the live value;
    * added/removed canonical edge keys — an O(1) correction that keeps the
      adjacency *probe* exact for every proposal, mutated rows or not, and
      the raw material for folding the snapshot forward.

    :meth:`next_consult` skips provably non-viable proposals in bulk: the
    next snapshot-viable candidate bounds a skip range, and the range is
    verified against the mutated-node mask with three gathers.  Skip ranges
    are disjoint across the block's lifetime, so the verification totals
    O(block).

    The exactness argument is the same as the original dirty-set design —
    every answer depends only on the rows of the nodes involved — but the
    overlay turns "row touched → per-proposal fallback forever" into
    "row touched → O(1) patch, everything else stays vectorized".
    """

    __slots__ = ("_n", "_size", "_vi", "_vk", "_vj", "_has_edge",
                 "_vi_list", "_vk_list", "_vj_list", "_edge_list",
                 "_candidates", "_candidate_pos", "_mut_bytes", "_mut_view",
                 "_snapshot", "num_mutated", "added", "removed")

    def __init__(self, snapshot: _Snapshot, vi_block: np.ndarray,
                 unit_block: np.ndarray) -> None:
        n = snapshot.n
        size = int(vi_block.size)
        indptr, flat = snapshot.indptr, snapshot.flat
        lengths, sorted_keys = snapshot.lengths, snapshot.keys
        total = int(flat.size)

        self._n = n
        self._size = size
        self._snapshot = snapshot
        self._vi = vi_block.astype(np.int64, copy=False)
        self._vk = np.full(size, -1, dtype=np.int64)
        self._vj = np.full(size, -1, dtype=np.int64)
        self._has_edge = np.zeros(size, dtype=bool)
        self._candidates: List[int] = []
        self._candidate_pos = 0
        # Mutated-node mask: a bytearray for ~O(50ns) scalar writes and
        # probes, with a NumPy view over the same buffer for the skip-range
        # gathers.
        self._mut_bytes = bytearray(max(n, 1))
        self._mut_view = np.frombuffer(self._mut_bytes, dtype=np.uint8)
        self.num_mutated = 0
        self.added: Set[int] = set()
        self.removed: Set[int] = set()
        if total == 0 or size == 0:
            # Degenerate window: still publish the scalar list mirrors the
            # consult path reads.
            self._vi_list = self._vi.tolist()
            self._vk_list = self._vk.tolist()
            self._vj_list = self._vj.tolist()
            self._edge_list = self._has_edge.tolist()
            return

        # Hop one: vk = Γ(vi)[min(int(u1 · |Γ(vi)|), |Γ(vi)| − 1)], exactly
        # as _SortedAdjacency.pick computes it.
        vi = self._vi
        deg_vi = lengths[vi]
        reachable = deg_vi > 0
        hop_one = np.minimum(
            (unit_block[:, 0] * deg_vi).astype(np.int64), deg_vi - 1
        )
        # Unreachable rows may sit past the last flat entry (indptr[vi] ==
        # total), so the gather index must be masked, not just the result.
        vk = flat[np.where(reachable, indptr[vi] + hop_one, 0)]
        self._vk[reachable] = vk[reachable]

        # Hop two replicates pick_excluding: vi is always a member of Γ(vk)
        # on the snapshot (symmetry), and its position inside the sorted row
        # is its global key rank minus the row start.
        position = np.searchsorted(sorted_keys, vk * n + vi) - indptr[vk]
        size_k = lengths[vk]
        valid = reachable & (size_k > 1)
        hop_two = np.minimum(
            (unit_block[:, 1] * (size_k - 1)).astype(np.int64),
            np.maximum(size_k - 2, 0),
        )
        hop_two = hop_two + (hop_two >= position)
        vj = flat[np.where(valid, indptr[vk] + hop_two, 0)]
        self._vj[valid] = vj[valid]

        # Adjacency probe for the surviving pairs, against the sorted
        # snapshot keys.
        pair_keys = vi * n + vj
        probe = np.minimum(np.searchsorted(sorted_keys, pair_keys), total - 1)
        self._has_edge = valid & (sorted_keys[probe] == pair_keys)
        # List mirrors for the scalar consult path (a NumPy scalar unbox per
        # read would dominate the per-consult cost).
        self._vi_list = self._vi.tolist()
        self._vk_list = self._vk.tolist()
        self._vj_list = self._vj.tolist()
        self._edge_list = self._has_edge.tolist()
        # Static candidates: proposals viable *on the snapshot* — the second
        # hop exists and the proposed edge is absent (pick_excluding
        # guarantees vj != vi).  Proposals whose verdict could have flipped
        # since necessarily depend on a mutated row and are caught by the
        # skip-range verification in next_consult.
        self._candidates = np.flatnonzero(
            (self._vj >= 0) & ~self._has_edge
        ).tolist()

    @property
    def size(self) -> int:
        """Number of proposals this window evaluates."""
        return self._size

    def folded_snapshot(self) -> _Snapshot:
        """The snapshot with this window's overlay folded in (current state)."""
        return self._snapshot.folded(self.added, self.removed)

    # ------------------------------------------------------------------
    # Bulk skipping and incremental maintenance
    # ------------------------------------------------------------------
    def next_consult(self, cursor: int) -> int:
        """First index ≥ ``cursor`` that needs Python attention (or size).

        That is the next *static* candidate — viable on the snapshot — or,
        before it, the first skipped proposal whose row dependencies touch a
        mutated node (its precomputed no-op verdict can no longer be
        trusted).
        """
        candidates = self._candidates
        position = self._candidate_pos
        while position < len(candidates) and candidates[position] < cursor:
            position += 1
        self._candidate_pos = position
        stop = candidates[position] if position < len(candidates) else self._size
        if stop > cursor and self.num_mutated:
            # (_vk/_vj hold -1 for dead proposals; index -1 aliases node
            # n-1, which can only spuriously *consult* a proposal — the
            # consult path re-derives exact answers either way.)
            if stop - cursor <= 8:
                mask = self._mut_bytes
                vi, vk, vj = self._vi_list, self._vk_list, self._vj_list
                for probe in range(cursor, stop):
                    if mask[vi[probe]] or mask[vk[probe]] or mask[vj[probe]]:
                        return probe
            else:
                # Geometric chunks: the scan stops at the first hit, so a
                # long candidate gap dense with mutated-row proposals costs
                # O(first-hit distance) per consult instead of re-gathering
                # the whole remaining gap every time.
                mutated = self._mut_view
                chunk = 64
                start = cursor
                while start < stop:
                    end = min(start + chunk, stop)
                    hit = mutated[self._vi[start:end]]
                    hit |= mutated[self._vk[start:end]]
                    hit |= mutated[self._vj[start:end]]
                    offset = int(np.argmax(hit))
                    if hit[offset]:
                        return start + offset
                    start = end
                    chunk *= 4
        return stop

    def is_mutated(self, node: int) -> bool:
        """Whether ``node``'s row changed since this window's snapshot."""
        return self._mut_bytes[node] != 0

    def note_swap(self, removed_edge: Edge, added_edge: Optional[Edge]) -> None:
        """Patch one accepted swap into the snapshot overlay — O(1).

        Later proposals depending on a mutated row are re-armed lazily by
        :meth:`next_consult`; everything else keeps its (still exact)
        precomputed answers.
        """
        n = self._n
        mask = self._mut_bytes
        vq, vr = removed_edge
        key = vq * n + vr if vq < vr else vr * n + vq
        if key in self.added:
            self.added.discard(key)
        else:
            self.removed.add(key)
        mask[vq] = 1
        mask[vr] = 1
        if added_edge is not None:
            va, vb = added_edge
            akey = va * n + vb if va < vb else vb * n + va
            if akey in self.removed:
                self.removed.discard(akey)
            else:
                self.added.add(akey)
            mask[va] = 1
            mask[vb] = 1
        self.num_mutated += 1

    def edge_exists(self, index: int, vi: int, vj: int) -> bool:
        """Current existence of edge ``{vi, vj}`` for an unmutated proposal.

        The snapshot probe corrected by the O(1) overlay of edges added or
        removed since — exact for *every* proposal, mutated rows or not.
        """
        key = vi * self._n + vj if vi < vj else vj * self._n + vi
        if key in self.added:
            return True
        if key in self.removed:
            return False
        return self._edge_list[index]

    def pair_cn(self, u: int, v: int) -> int:
        """Snapshot common-neighbour count of an arbitrary pair.

        Exact for the live structure while neither row is mutated.  A
        vectorized merge of the two sorted snapshot rows — the win over the
        set intersection grows with the row sizes, so callers gate it on
        :meth:`row_length`.
        """
        snapshot = self._snapshot
        indptr, flat = snapshot.indptr, snapshot.flat
        return int(sorted_intersect(
            flat[indptr[u]:indptr[u + 1]],
            flat[indptr[v]:indptr[v + 1]],
        ).size)

    def row_length(self, node: int) -> int:
        """Snapshot degree of ``node``."""
        return int(self._snapshot.lengths[node])

    # ------------------------------------------------------------------
    # Precomputed answers
    # ------------------------------------------------------------------
    def vk(self, index: int) -> Optional[int]:
        """First-hop endpoint of proposal ``index`` (``None``: no neighbour)."""
        value = self._vk_list[index]
        return None if value < 0 else value

    def vj(self, index: int) -> Optional[int]:
        """Second-hop endpoint (``None``: Γ(vk) \\ {vi} was empty)."""
        value = self._vj_list[index]
        return None if value < 0 else value



class TriCycLeModel(StructuralModel):
    """The TriCycLe generative model.

    Parameters
    ----------
    degrees:
        Desired degree sequence (one entry per node).
    num_triangles:
        Target number of triangles ``n_∆``.
    handle_orphans:
        Enable the orphan extension: exclude degree-one nodes from the π
        distribution, generate ``m - |N_1|`` seed edges, and repair
        disconnected nodes with the Algorithm 2 post-processing step.
    max_iteration_factor:
        The rewiring loop proposes at most ``max_iteration_factor * m`` edges
        before giving up; this keeps generation bounded when the degree
        sequence simply cannot support the requested number of triangles.
    batch_proposals:
        Evaluate proposal windows (walk endpoints, adjacency probes,
        common-neighbour counts) vectorized against incrementally maintained
        CSR snapshots, skipping provably non-viable proposals in bulk.
        Bit-identical to the sequential evaluation (``False`` keeps the
        per-proposal loop, used by the equivalence tests and the perf
        harness).
    postprocess_vectorized:
        Run the orphan repair through the vectorized engine (default); the
        scalar reference repair is selected with ``False``.  The two repair
        paths consume the RNG differently, so per-seed outputs differ while
        targeting the same distribution.
    """

    def __init__(self, degrees: np.ndarray, num_triangles: int,
                 handle_orphans: bool = True,
                 max_iteration_factor: int = 30,
                 batch_proposals: bool = True,
                 postprocess_vectorized: bool = True) -> None:
        self._degrees = np.asarray(degrees, dtype=np.int64)
        if self._degrees.ndim != 1:
            raise ValueError("degrees must be one-dimensional")
        if np.any(self._degrees < 0):
            raise ValueError("degrees must be non-negative")
        if num_triangles < 0:
            raise ValueError(f"num_triangles must be non-negative, got {num_triangles}")
        if max_iteration_factor < 1:
            raise ValueError("max_iteration_factor must be >= 1")
        self._num_triangles = int(num_triangles)
        self._handle_orphans = bool(handle_orphans)
        self._max_iteration_factor = int(max_iteration_factor)
        self._batch_proposals = bool(batch_proposals)
        self._postprocess_vectorized = bool(postprocess_vectorized)

    @property
    def degrees(self) -> np.ndarray:
        """The desired degree sequence."""
        return self._degrees

    @property
    def num_triangles(self) -> int:
        """The target triangle count ``n_∆``."""
        return self._num_triangles

    @property
    def target_num_edges(self) -> int:
        """Target number of edges ``m = sum(d_i) / 2``."""
        return int(self._degrees.sum() // 2)

    def generate(self, num_nodes: Optional[int] = None, rng: RngLike = None,
                 acceptance: Optional[EdgeAcceptance] = None) -> AttributedGraph:
        """Generate a TriCycLe graph (Algorithm 1 plus the orphan extension).

        Parameters
        ----------
        num_nodes:
            Number of nodes; defaults to the degree-sequence length and must
            match it when given.
        rng:
            Seed or generator.
        acceptance:
            Optional attribute-dependent acceptance probabilities.  When
            supplied, both the Chung-Lu seed phase and the rewiring phase
            filter proposed edges through them (Section 4).
        """
        n = self._degrees.size if num_nodes is None else int(num_nodes)
        if n != self._degrees.size:
            raise ValueError(
                f"num_nodes ({n}) must match the degree sequence length "
                f"({self._degrees.size})"
            )
        generator = ensure_rng(rng)

        seed_model = ChungLuModel(
            self._degrees,
            bias_correction=True,
            exclude_degree_one=self._handle_orphans,
        )
        graph = seed_model.generate(rng=generator, acceptance=acceptance)
        pi = build_pi_distribution(
            self._degrees, exclude_degree_one=self._handle_orphans
        )
        if self._handle_orphans:
            # The paper applies the orphan repair to the Chung-Lu seed graph
            # as well as to the final output (Section 3.3), so the rewiring
            # phase can compensate for any triangles the repair destroys.
            graph = post_process_graph(
                graph, self._degrees, pi, rng=generator, acceptance=acceptance,
                vectorized=self._postprocess_vectorized,
            )

        accel = graph.metrics_accelerator
        if accel is not None:
            # The rewiring loop below maintains its own incremental triangle
            # count and already pays two common-neighbour probes per
            # proposal; piggybacking full per-edge metric maintenance would
            # double that cost for counts nobody reads mid-loop.  Use the
            # escape hatch — the consumer re-primes once afterwards.
            accel.detach()
        edge_age: Deque[Edge] = deque(graph.edges())
        tau = triangle_count(graph)
        target = self._num_triangles
        max_iterations = self._max_iteration_factor * max(graph.num_edges, 1)
        sampler = WeightedSampler(pi)
        adjacency = _SortedAdjacency(graph)

        rewire = self._rewire_batched if self._batch_proposals \
            else self._rewire_sequential
        rewire(graph, adjacency, edge_age, tau, target, max_iterations,
               sampler, generator, acceptance)

        if self._handle_orphans:
            graph = post_process_graph(
                graph, self._degrees, pi, rng=generator, acceptance=acceptance,
                vectorized=self._postprocess_vectorized,
            )
        if acceptance is not None and graph.num_attributes == 0:
            # Ensure the attribute dimension matches what AGM expects.
            graph = AttributedGraph.from_graph_structure(
                graph, acceptance.num_attributes
            )
        return graph

    # ------------------------------------------------------------------
    # Sequential rewiring (the per-proposal reference loop)
    # ------------------------------------------------------------------
    def _rewire_sequential(self, graph: AttributedGraph,
                           adjacency: _SortedAdjacency,
                           edge_age: Deque[Edge], tau: int, target: int,
                           max_iterations: int, sampler: WeightedSampler,
                           generator: np.random.Generator,
                           acceptance: Optional[EdgeAcceptance]) -> None:
        """Per-proposal reference loop (``batch_proposals=False``).

        π proposals and the uniforms driving the two neighbour hops are
        drawn in blocks (a scalar searchsorted plus two scalar RNG calls per
        iteration used to dominate the proposal cost); evaluation is fully
        scalar against the live graph.  The batched loop consumes the
        identical RNG stream.
        """
        block_size = max(256, min(65536, max_iterations))
        vi_block = sampler.sample_many(block_size, generator)
        unit_block = generator.random((block_size, 2))
        cursor = 0
        iterations = 0
        # Scalar membership probes and common-neighbour counts run on the
        # O(1)-update set view.
        graph.materialize_neighbor_sets()

        while tau < target and iterations < max_iterations and graph.num_edges > 0:
            iterations += 1
            if cursor >= block_size:
                vi_block = sampler.sample_many(block_size, generator)
                unit_block = generator.random((block_size, 2))
                cursor = 0
            vi = int(vi_block[cursor])
            hop_one, hop_two = unit_block[cursor]
            cursor += 1

            # Friend-of-a-friend proposal (Algorithm 1, lines 5-9): walk to a
            # random neighbour vk, then to a random neighbour of vk other
            # than vi.
            vk = adjacency.pick(vi, hop_one)
            if vk is None:
                continue
            vj = adjacency.pick_excluding(vk, vi, hop_two)
            if vj is None or vj == vi:
                continue
            if graph.has_edge(vi, vj):
                continue
            if acceptance is not None and not acceptance.accepts(vi, vj, generator):
                continue

            oldest = self._pop_oldest_existing_edge(graph, edge_age)
            if oldest is None:
                break
            vq, vr = oldest
            cn_old = graph.count_common_neighbors(vq, vr)
            graph.remove_edge(vq, vr)
            adjacency.remove(vq, vr)
            cn_new = graph.count_common_neighbors(vi, vj)
            if cn_new >= cn_old:
                graph.add_edge(vi, vj)
                adjacency.add(vi, vj)
                edge_age.append((min(vi, vj), max(vi, vj)))
                tau += cn_new - cn_old
            else:
                # Undo the removal; the retired edge becomes the youngest so
                # the loop cannot get stuck re-proposing the same swap.
                graph.add_edge(vq, vr)
                adjacency.add(vq, vr)
                edge_age.append((vq, vr))

    # ------------------------------------------------------------------
    # Batched rewiring (incremental snapshots)
    # ------------------------------------------------------------------
    def _rewire_batched(self, graph: AttributedGraph,
                        adjacency: _SortedAdjacency,
                        edge_age: Deque[Edge], tau: int, target: int,
                        max_iterations: int, sampler: WeightedSampler,
                        generator: np.random.Generator,
                        acceptance: Optional[EdgeAcceptance]) -> None:
        """Vectorized loop on incrementally folded snapshots.

        The graph object is untouched while rewiring: the live structure is
        ``adjacency`` (rows + set mirrors), probes and counts run against
        the current :class:`_ProposalBlock`'s snapshot-plus-overlay, and the
        final edge set is adopted back into the graph in one vectorized
        pass.  Bit-identical to :meth:`_rewire_sequential`.
        """
        block_size = max(256, min(65536, max_iterations))
        vi_block = sampler.sample_many(block_size, generator)
        unit_block = generator.random((block_size, 2))
        cursor = 0
        iterations = 0
        base = 0
        swapped = False
        if graph.num_edges == 0 or tau >= target:
            return
        adjacency.ensure_sets()
        snapshot = _Snapshot.from_graph(graph)
        batch = _ProposalBlock(
            snapshot, vi_block[:_EVAL_WINDOW], unit_block[:_EVAL_WINDOW]
        )
        # Scalar consults read the presampled blocks as Python lists — one
        # bulk conversion per RNG block instead of a NumPy scalar unbox per
        # proposal.
        vi_list = vi_block.tolist()
        unit_one = unit_block[:, 0].tolist()
        unit_two = unit_block[:, 1].tolist()

        while tau < target and iterations < max_iterations:
            iterations += 1
            if cursor >= block_size:
                snapshot = batch.folded_snapshot()
                vi_block = sampler.sample_many(block_size, generator)
                unit_block = generator.random((block_size, 2))
                cursor = 0
                base = 0
                batch = _ProposalBlock(
                    snapshot, vi_block[:_EVAL_WINDOW], unit_block[:_EVAL_WINDOW]
                )
                vi_list = vi_block.tolist()
                unit_one = unit_block[:, 0].tolist()
                unit_two = unit_block[:, 1].tolist()
            elif cursor >= base + batch.size:
                # Window exhausted: fold the overlay forward and evaluate
                # the next window against the fresh snapshot.
                snapshot = batch.folded_snapshot()
                base = cursor
                batch = _ProposalBlock(
                    snapshot,
                    vi_block[cursor:cursor + _EVAL_WINDOW],
                    unit_block[cursor:cursor + _EVAL_WINDOW],
                )

            index = base + batch.next_consult(cursor - base)
            if index > cursor:
                # Proposals [cursor, index) are provably no-ops right now;
                # the sequential loop burns one iteration on each without
                # touching the structure or the RNG, so only the iteration
                # budget and the cursor move.
                skip = min(index - cursor, max_iterations - iterations + 1)
                iterations += skip - 1
                cursor += skip
                continue

            vi = vi_list[cursor]
            local = cursor - base
            cursor += 1

            is_mutated = batch.is_mutated
            cn_hint: Optional[int] = None
            if is_mutated(vi):
                vk = adjacency.pick(vi, unit_one[index])
                if vk is None:
                    continue
                vj = adjacency.pick_excluding(vk, vi, unit_two[index])
                if vj is None or vj == vi:
                    continue
                if adjacency.has(vi, vj):
                    continue
            else:
                vk = batch.vk(local)
                if vk is None:
                    continue
                if is_mutated(vk):
                    vj = adjacency.pick_excluding(vk, vi, unit_two[index])
                    if vj is None or vj == vi:
                        continue
                    if adjacency.has(vi, vj):
                        continue
                else:
                    vj = batch.vj(local)
                    if vj is None:
                        continue
                    if batch.edge_exists(local, vi, vj):
                        continue
                    if not is_mutated(vj) and min(
                        batch.row_length(vi), batch.row_length(vj)
                    ) >= 64:
                        # Large untouched rows: the vectorized snapshot
                        # merge beats the live set intersection (identical
                        # integers); small or mutated rows take the live
                        # count below.
                        cn_hint = batch.pair_cn(vi, vj)
            if acceptance is not None and not acceptance.accepts(vi, vj, generator):
                continue

            oldest = self._pop_oldest_existing_edge_sets(adjacency, edge_age)
            if oldest is None:
                break
            vq, vr = oldest
            cn_old = adjacency.count_common(vq, vr)
            adjacency.remove(vq, vr)
            if cn_hint is not None and vq != vi and vq != vj \
                    and vr != vi and vr != vj:
                cn_new = cn_hint
            else:
                cn_new = adjacency.count_common(vi, vj)

            if cn_new >= cn_old:
                adjacency.add(vi, vj)
                batch.note_swap((vq, vr), (vi, vj))
                edge_age.append((min(vi, vj), max(vi, vj)))
                tau += cn_new - cn_old
                swapped = True
            else:
                # Undo the removal; sorted rows make the undo byte-exact,
                # so the snapshot stays untouched.
                adjacency.add(vq, vr)
                edge_age.append((vq, vr))

        if swapped:
            # Adopt the rewired edge set back into the graph in one
            # vectorized pass (the edge count is invariant under swaps).
            final = batch.folded_snapshot()
            graph._adopt_directed_keys(final.keys, graph.num_edges)

    @staticmethod
    def _pop_oldest_existing_edge_sets(adjacency: _SortedAdjacency,
                                       edge_age: Deque[Edge]) -> Optional[Edge]:
        """Pop the oldest edge still present in the (set-mirrored) adjacency."""
        sets = adjacency.sets
        while edge_age:
            u, v = edge_age.popleft()
            if v in sets[u]:
                return (u, v)
        return None

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _pop_oldest_existing_edge(graph: AttributedGraph,
                                  edge_age: Deque[Edge]) -> Optional[Edge]:
        """Pop the oldest edge that still exists in the graph."""
        while edge_age:
            u, v = edge_age.popleft()
            if graph.has_edge(u, v):
                return (u, v)
        return None
