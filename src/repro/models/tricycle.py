"""TriCycLe: the paper's triangle-targeting Chung-Lu model (Algorithm 1).

TriCycLe captures both the degree distribution and the clustering of a
social graph using only two statistics that admit accurate DP estimators:
the degree sequence and the triangle count.  Generation proceeds in two
phases:

1. a Chung-Lu seed graph with the desired degree sequence is generated;
2. edges are iteratively rewired — a "friend of a friend" edge is proposed
   (creating at least one new triangle) and the oldest seed edge is retired —
   until the graph contains the target number of triangles.  Replacements
   that would lower the net triangle count are rejected, which guarantees
   progress and termination with the desired count (up to the attempt
   budget).

The orphan extension of Section 3.3 is supported: degree-one nodes can be
excluded from the π distribution and wired up afterwards by
:func:`repro.models.postprocess.post_process_graph`.

Batched proposal evaluation
---------------------------
With ``batch_proposals=True`` the rewiring loop runs on an engine built
around **incrementally maintained CSR snapshots**:

* the live structure is a :class:`_SortedAdjacency` (sorted neighbour rows
  plus set mirrors); the graph object is not touched until the loop ends,
  when the final edge set is adopted back in one vectorized pass;
* proposal blocks evaluate walk endpoints and adjacency probes for a whole
  window in a handful of NumPy passes against an immutable
  :class:`_Snapshot`; common-neighbour counts come from vectorized merges
  of the snapshot rows while the rows are untouched;
* every accepted swap is **patched into the block as a delta overlay** —
  the mutated-node set plus the edge keys added/removed since the snapshot
  — in O(1), instead of funnelling all later proposals through a live
  fallback;
* a snapshot is *folded forward* (previous keys ⊕ overlay, a sort-free
  array merge) whenever a new evaluation window starts, so the vectorized
  answers keep their hit rate across whole blocks;
* proposals that are provably non-viable — no second hop, or the proposed
  edge already exists — are skipped in bulk with zero per-proposal Python
  work; the skip ranges are verified against the mutated-node mask, and
  the ranges are disjoint over a block's lifetime, so verification totals
  O(block), not O(block · swaps).

The batched path is bit-identical to ``batch_proposals=False``: both share
the same sorted-row pick semantics and presampled RNG stream, and every
batched answer equals the live value at the moment it is consulted (pinned
by ``tests/models/test_tricycle.py``).

Speculative rewiring (``equivalence="distributional"``)
-------------------------------------------------------
The exact contract caps the batched engine's speedup — the workload is
accept-dominated, so the scalar swap sequence itself is the bottleneck.
``equivalence="distributional"`` dispatches rewiring to
:class:`repro.models.rewiring.SpeculativeRewiring`, which commits whole
blocks of disjoint accepted swaps per snapshot and is pinned by
distributional closeness (degree sequence, Θ'_F, triangle count) rather
than bit-identity; see :mod:`repro.models.rewiring` for the contract.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.graphs.attributed import AttributedGraph
from repro.graphs.statistics import triangle_count
from repro.models.base import EdgeAcceptance, StructuralModel
from repro.models.chung_lu import ChungLuModel, build_pi_distribution
from repro.models.postprocess import post_process_graph
from repro.models.rewiring import (  # noqa: F401  (re-exported names)
    _EVAL_WINDOW,
    _SPECULATION_BLOCK,
    _ProposalBlock,
    _Snapshot,
    _SortedAdjacency,
    Edge,
    SpeculativeRewiring,
)
from repro.utils.memory import (
    MemoryBudget,
    adjacency_set_bytes,
    csr_bytes,
    edge_age_bytes,
)
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.sampling import WeightedSampler

_EQUIVALENCE_MODES = ("exact", "distributional")


class TriCycLeModel(StructuralModel):
    """The TriCycLe generative model.

    Parameters
    ----------
    degrees:
        Desired degree sequence (one entry per node).
    num_triangles:
        Target number of triangles ``n_∆``.
    handle_orphans:
        Enable the orphan extension: exclude degree-one nodes from the π
        distribution, generate ``m - |N_1|`` seed edges, and repair
        disconnected nodes with the Algorithm 2 post-processing step.
    max_iteration_factor:
        The rewiring loop proposes at most ``max_iteration_factor * m`` edges
        before giving up; this keeps generation bounded when the degree
        sequence simply cannot support the requested number of triangles.
    batch_proposals:
        Evaluate proposal windows (walk endpoints, adjacency probes,
        common-neighbour counts) vectorized against incrementally maintained
        CSR snapshots, skipping provably non-viable proposals in bulk.
        Bit-identical to the sequential evaluation (``False`` keeps the
        per-proposal loop, used by the equivalence tests and the perf
        harness).
    postprocess_vectorized:
        Run the orphan repair through the vectorized engine (default); the
        scalar reference repair is selected with ``False``.  The two repair
        paths consume the RNG differently, so per-seed outputs differ while
        targeting the same distribution.
    equivalence:
        Rewiring equivalence contract.  ``"exact"`` (default) is
        bit-identical to the historical scalar swap sequence;
        ``"distributional"`` dispatches to the speculative block engine
        (:class:`repro.models.rewiring.SpeculativeRewiring`), which targets
        the same degree/triangle/Θ'_F distributions but commits whole blocks
        of disjoint swaps per snapshot.  Deterministic per
        ``(seed, speculation_block)``.
    speculation_block:
        Proposals drawn per speculative round (distributional mode only).
        Larger blocks amortize the vectorized passes and snapshot folds
        better but raise the commit-conflict rate.
    memory_budget_mb:
        Optional byte budget for generation (defaults to the
        ``REPRO_MEMORY_BUDGET_MB`` environment variable when unset).  The
        Chung-Lu seed phase samples in byte-bounded shards, and the rewiring
        phase's dominant working set (set-mirrored adjacency, edge-age
        queue, CSR snapshots) is admitted against the budget before the
        loop starts, raising :class:`~repro.utils.memory.MemoryBudgetError`
        when it cannot fit.  Generated graphs are unaffected by the budget.
    """

    def __init__(self, degrees: np.ndarray, num_triangles: int,
                 handle_orphans: bool = True,
                 max_iteration_factor: int = 30,
                 batch_proposals: bool = True,
                 postprocess_vectorized: bool = True,
                 equivalence: str = "exact",
                 speculation_block: int = _SPECULATION_BLOCK,
                 memory_budget_mb: Optional[int] = None) -> None:
        self._degrees = np.asarray(degrees, dtype=np.int64)
        if self._degrees.ndim != 1:
            raise ValueError("degrees must be one-dimensional")
        if np.any(self._degrees < 0):
            raise ValueError("degrees must be non-negative")
        if num_triangles < 0:
            raise ValueError(f"num_triangles must be non-negative, got {num_triangles}")
        if max_iteration_factor < 1:
            raise ValueError("max_iteration_factor must be >= 1")
        if equivalence not in _EQUIVALENCE_MODES:
            raise ValueError(
                f"equivalence must be one of {_EQUIVALENCE_MODES}, "
                f"got {equivalence!r}"
            )
        if speculation_block < 1:
            raise ValueError("speculation_block must be >= 1")
        self._num_triangles = int(num_triangles)
        self._handle_orphans = bool(handle_orphans)
        self._max_iteration_factor = int(max_iteration_factor)
        self._batch_proposals = bool(batch_proposals)
        self._postprocess_vectorized = bool(postprocess_vectorized)
        self._equivalence = str(equivalence)
        self._speculation_block = int(speculation_block)
        self._memory_budget_mb = (
            None if memory_budget_mb is None else int(memory_budget_mb)
        )
        self._memory_budget = MemoryBudget.resolve(memory_budget_mb)
        self._last_rewiring_stats: Optional[dict] = None

    @property
    def degrees(self) -> np.ndarray:
        """The desired degree sequence."""
        return self._degrees

    @property
    def num_triangles(self) -> int:
        """The target triangle count ``n_∆``."""
        return self._num_triangles

    @property
    def target_num_edges(self) -> int:
        """Target number of edges ``m = sum(d_i) / 2``."""
        return int(self._degrees.sum() // 2)

    @property
    def equivalence(self) -> str:
        """The rewiring equivalence contract (``exact``/``distributional``)."""
        return self._equivalence

    @property
    def last_rewiring_stats(self) -> Optional[dict]:
        """Speculative-engine telemetry from the latest ``generate()``.

        ``None`` unless the last generation ran the distributional engine;
        otherwise the engine's counter dict (rounds, proposals, accepted,
        conflicts, restored pops, folds, …) — the raw material for the
        bench harness's per-block acceptance/conflict/rollback rates.
        """
        return self._last_rewiring_stats

    def generate(self, num_nodes: Optional[int] = None, rng: RngLike = None,
                 acceptance: Optional[EdgeAcceptance] = None) -> AttributedGraph:
        """Generate a TriCycLe graph (Algorithm 1 plus the orphan extension).

        Parameters
        ----------
        num_nodes:
            Number of nodes; defaults to the degree-sequence length and must
            match it when given.
        rng:
            Seed or generator.
        acceptance:
            Optional attribute-dependent acceptance probabilities.  When
            supplied, both the Chung-Lu seed phase and the rewiring phase
            filter proposed edges through them (Section 4).
        """
        n = self._degrees.size if num_nodes is None else int(num_nodes)
        if n != self._degrees.size:
            raise ValueError(
                f"num_nodes ({n}) must match the degree sequence length "
                f"({self._degrees.size})"
            )
        generator = ensure_rng(rng)

        seed_model = ChungLuModel(
            self._degrees,
            bias_correction=True,
            exclude_degree_one=self._handle_orphans,
            memory_budget_mb=self._memory_budget_mb,
        )
        graph = seed_model.generate(rng=generator, acceptance=acceptance)
        pi = build_pi_distribution(
            self._degrees, exclude_degree_one=self._handle_orphans
        )
        if self._handle_orphans:
            # The paper applies the orphan repair to the Chung-Lu seed graph
            # as well as to the final output (Section 3.3), so the rewiring
            # phase can compensate for any triangles the repair destroys.
            graph = post_process_graph(
                graph, self._degrees, pi, rng=generator, acceptance=acceptance,
                vectorized=self._postprocess_vectorized,
            )

        accel = graph.metrics_accelerator
        self._last_rewiring_stats = None
        if accel is not None:
            if self._equivalence == "distributional":
                # The speculative engine's batched kernels already compute
                # every intersection maintenance needs, so the accelerator
                # stays attached and is fed per-round swap batches.
                accel.record_rewiring_policy("kept")
            else:
                # The exact loops maintain their own incremental triangle
                # count and already pay two common-neighbour probes per
                # proposal; piggybacking full per-edge metric maintenance
                # would double that cost for counts nobody reads mid-loop.
                # Use the escape hatch — the consumer re-primes afterwards.
                accel.record_rewiring_policy("detached")
                accel.detach()
                accel = None
        # Admit the rewiring phase's dominant resident structures before
        # building any of them: the edge-age queue, the set-mirrored
        # adjacency (or its speculative-engine equivalent), and the CSR
        # snapshot plus its fold scratch (int64 directed keys, ~3 copies at
        # the fold peak).
        self._memory_budget.admit(
            "tricycle.rewire",
            edge_age_bytes(graph.num_edges)
            + adjacency_set_bytes(n, graph.num_edges)
            + csr_bytes(n, graph.num_edges)
            + 3 * 2 * 8 * graph.num_edges,
        )
        edge_age: Deque[Edge] = deque(graph.edges())
        tau = triangle_count(graph)
        target = self._num_triangles
        max_iterations = self._max_iteration_factor * max(graph.num_edges, 1)
        sampler = WeightedSampler(pi)

        if self._equivalence == "distributional":
            engine = SpeculativeRewiring(
                graph, edge_age, tau, target, max_iterations, sampler,
                generator, acceptance, block_size=self._speculation_block,
                accel=accel,
            )
            engine.run()
            self._last_rewiring_stats = dict(engine.stats)
        else:
            adjacency = _SortedAdjacency(graph)
            rewire = self._rewire_batched if self._batch_proposals \
                else self._rewire_sequential
            rewire(graph, adjacency, edge_age, tau, target, max_iterations,
                   sampler, generator, acceptance)

        if self._handle_orphans:
            graph = post_process_graph(
                graph, self._degrees, pi, rng=generator, acceptance=acceptance,
                vectorized=self._postprocess_vectorized,
            )
        if acceptance is not None and graph.num_attributes == 0:
            # Ensure the attribute dimension matches what AGM expects.
            graph = AttributedGraph.from_graph_structure(
                graph, acceptance.num_attributes
            )
        return graph

    # ------------------------------------------------------------------
    # Sequential rewiring (the per-proposal reference loop)
    # ------------------------------------------------------------------
    def _rewire_sequential(self, graph: AttributedGraph,
                           adjacency: _SortedAdjacency,
                           edge_age: Deque[Edge], tau: int, target: int,
                           max_iterations: int, sampler: WeightedSampler,
                           generator: np.random.Generator,
                           acceptance: Optional[EdgeAcceptance]) -> None:
        """Per-proposal reference loop (``batch_proposals=False``).

        π proposals and the uniforms driving the two neighbour hops are
        drawn in blocks (a scalar searchsorted plus two scalar RNG calls per
        iteration used to dominate the proposal cost); evaluation is fully
        scalar against the live graph.  The batched loop consumes the
        identical RNG stream.
        """
        block_size = max(256, min(65536, max_iterations))
        vi_block = sampler.sample_many(block_size, generator)
        unit_block = generator.random((block_size, 2))
        cursor = 0
        iterations = 0
        # Scalar membership probes and common-neighbour counts run on the
        # O(1)-update set view.
        graph.materialize_neighbor_sets()

        while tau < target and iterations < max_iterations and graph.num_edges > 0:
            iterations += 1
            if cursor >= block_size:
                vi_block = sampler.sample_many(block_size, generator)
                unit_block = generator.random((block_size, 2))
                cursor = 0
            vi = int(vi_block[cursor])
            hop_one, hop_two = unit_block[cursor]
            cursor += 1

            # Friend-of-a-friend proposal (Algorithm 1, lines 5-9): walk to a
            # random neighbour vk, then to a random neighbour of vk other
            # than vi.
            vk = adjacency.pick(vi, hop_one)
            if vk is None:
                continue
            vj = adjacency.pick_excluding(vk, vi, hop_two)
            if vj is None or vj == vi:
                continue
            if graph.has_edge(vi, vj):
                continue
            if acceptance is not None and not acceptance.accepts(vi, vj, generator):
                continue

            oldest = self._pop_oldest_existing_edge(graph, edge_age)
            if oldest is None:
                break
            vq, vr = oldest
            cn_old = graph.count_common_neighbors(vq, vr)
            graph.remove_edge(vq, vr)
            adjacency.remove(vq, vr)
            cn_new = graph.count_common_neighbors(vi, vj)
            if cn_new >= cn_old:
                graph.add_edge(vi, vj)
                adjacency.add(vi, vj)
                edge_age.append((min(vi, vj), max(vi, vj)))
                tau += cn_new - cn_old
            else:
                # Undo the removal; the retired edge becomes the youngest so
                # the loop cannot get stuck re-proposing the same swap.
                graph.add_edge(vq, vr)
                adjacency.add(vq, vr)
                edge_age.append((vq, vr))

    # ------------------------------------------------------------------
    # Batched rewiring (incremental snapshots)
    # ------------------------------------------------------------------
    def _rewire_batched(self, graph: AttributedGraph,
                        adjacency: _SortedAdjacency,
                        edge_age: Deque[Edge], tau: int, target: int,
                        max_iterations: int, sampler: WeightedSampler,
                        generator: np.random.Generator,
                        acceptance: Optional[EdgeAcceptance]) -> None:
        """Vectorized loop on incrementally folded snapshots.

        The graph object is untouched while rewiring: the live structure is
        ``adjacency`` (rows + set mirrors), probes and counts run against
        the current :class:`_ProposalBlock`'s snapshot-plus-overlay, and the
        final edge set is adopted back into the graph in one vectorized
        pass.  Bit-identical to :meth:`_rewire_sequential`.
        """
        block_size = max(256, min(65536, max_iterations))
        vi_block = sampler.sample_many(block_size, generator)
        unit_block = generator.random((block_size, 2))
        cursor = 0
        iterations = 0
        base = 0
        swapped = False
        if graph.num_edges == 0 or tau >= target:
            return
        adjacency.ensure_sets()
        snapshot = _Snapshot.from_graph(graph)
        batch = _ProposalBlock(
            snapshot, vi_block[:_EVAL_WINDOW], unit_block[:_EVAL_WINDOW]
        )
        # Scalar consults read the presampled blocks as Python lists — one
        # bulk conversion per RNG block instead of a NumPy scalar unbox per
        # proposal.
        vi_list = vi_block.tolist()
        unit_one = unit_block[:, 0].tolist()
        unit_two = unit_block[:, 1].tolist()

        while tau < target and iterations < max_iterations:
            iterations += 1
            if cursor >= block_size:
                snapshot = batch.folded_snapshot()
                vi_block = sampler.sample_many(block_size, generator)
                unit_block = generator.random((block_size, 2))
                cursor = 0
                base = 0
                batch = _ProposalBlock(
                    snapshot, vi_block[:_EVAL_WINDOW], unit_block[:_EVAL_WINDOW]
                )
                vi_list = vi_block.tolist()
                unit_one = unit_block[:, 0].tolist()
                unit_two = unit_block[:, 1].tolist()
            elif cursor >= base + batch.size:
                # Window exhausted: fold the overlay forward and evaluate
                # the next window against the fresh snapshot.
                snapshot = batch.folded_snapshot()
                base = cursor
                batch = _ProposalBlock(
                    snapshot,
                    vi_block[cursor:cursor + _EVAL_WINDOW],
                    unit_block[cursor:cursor + _EVAL_WINDOW],
                )

            index = base + batch.next_consult(cursor - base)
            if index > cursor:
                # Proposals [cursor, index) are provably no-ops right now;
                # the sequential loop burns one iteration on each without
                # touching the structure or the RNG, so only the iteration
                # budget and the cursor move.
                skip = min(index - cursor, max_iterations - iterations + 1)
                iterations += skip - 1
                cursor += skip
                continue

            vi = vi_list[cursor]
            local = cursor - base
            cursor += 1

            is_mutated = batch.is_mutated
            cn_hint: Optional[int] = None
            if is_mutated(vi):
                vk = adjacency.pick(vi, unit_one[index])
                if vk is None:
                    continue
                vj = adjacency.pick_excluding(vk, vi, unit_two[index])
                if vj is None or vj == vi:
                    continue
                if adjacency.has(vi, vj):
                    continue
            else:
                vk = batch.vk(local)
                if vk is None:
                    continue
                if is_mutated(vk):
                    vj = adjacency.pick_excluding(vk, vi, unit_two[index])
                    if vj is None or vj == vi:
                        continue
                    if adjacency.has(vi, vj):
                        continue
                else:
                    vj = batch.vj(local)
                    if vj is None:
                        continue
                    if batch.edge_exists(local, vi, vj):
                        continue
                    if not is_mutated(vj) and min(
                        batch.row_length(vi), batch.row_length(vj)
                    ) >= 64:
                        # Large untouched rows: the vectorized snapshot
                        # merge beats the live set intersection (identical
                        # integers); small or mutated rows take the live
                        # count below.
                        cn_hint = batch.pair_cn(vi, vj)
            if acceptance is not None and not acceptance.accepts(vi, vj, generator):
                continue

            oldest = self._pop_oldest_existing_edge_sets(adjacency, edge_age)
            if oldest is None:
                break
            vq, vr = oldest
            cn_old = adjacency.count_common(vq, vr)
            adjacency.remove(vq, vr)
            if cn_hint is not None and vq != vi and vq != vj \
                    and vr != vi and vr != vj:
                cn_new = cn_hint
            else:
                cn_new = adjacency.count_common(vi, vj)

            if cn_new >= cn_old:
                adjacency.add(vi, vj)
                batch.note_swap((vq, vr), (vi, vj))
                edge_age.append((min(vi, vj), max(vi, vj)))
                tau += cn_new - cn_old
                swapped = True
            else:
                # Undo the removal; sorted rows make the undo byte-exact,
                # so the snapshot stays untouched.
                adjacency.add(vq, vr)
                edge_age.append((vq, vr))

        if swapped:
            # Adopt the rewired edge set back into the graph in one
            # vectorized pass (the edge count is invariant under swaps).
            final = batch.folded_snapshot()
            graph._adopt_directed_keys(final.keys, graph.num_edges)

    @staticmethod
    def _pop_oldest_existing_edge_sets(adjacency: _SortedAdjacency,
                                       edge_age: Deque[Edge]) -> Optional[Edge]:
        """Pop the oldest edge still present in the (set-mirrored) adjacency."""
        sets = adjacency.sets
        while edge_age:
            u, v = edge_age.popleft()
            if v in sets[u]:
                return (u, v)
        return None

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _pop_oldest_existing_edge(graph: AttributedGraph,
                                  edge_age: Deque[Edge]) -> Optional[Edge]:
        """Pop the oldest edge that still exists in the graph."""
        while edge_age:
            u, v = edge_age.popleft()
            if graph.has_edge(u, v):
                return (u, v)
        return None
