"""TriCycLe: the paper's triangle-targeting Chung-Lu model (Algorithm 1).

TriCycLe captures both the degree distribution and the clustering of a
social graph using only two statistics that admit accurate DP estimators:
the degree sequence and the triangle count.  Generation proceeds in two
phases:

1. a Chung-Lu seed graph with the desired degree sequence is generated;
2. edges are iteratively rewired — a "friend of a friend" edge is proposed
   (creating at least one new triangle) and the oldest seed edge is retired —
   until the graph contains the target number of triangles.  Replacements
   that would lower the net triangle count are rejected, which guarantees
   progress and termination with the desired count (up to the attempt
   budget).

The orphan extension of Section 3.3 is supported: degree-one nodes can be
excluded from the π distribution and wired up afterwards by
:func:`repro.models.postprocess.post_process_graph`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

import numpy as np

from repro.graphs.attributed import AttributedGraph
from repro.graphs.statistics import triangle_count
from repro.models.base import EdgeAcceptance, StructuralModel
from repro.models.chung_lu import ChungLuModel, build_pi_distribution
from repro.models.postprocess import post_process_graph
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.sampling import WeightedSampler

Edge = Tuple[int, int]


class _AdjacencyLists:
    """Mutable adjacency lists supporting O(1) uniform neighbour picks.

    Seeded from the graph's CSR view (so the initial per-node ordering is
    deterministic), then kept in sync with the rewiring loop's mutations.
    The swap-with-last removal plus a per-node position map makes ``add``,
    ``remove``, and uniform random selection all O(1) — replacing the
    O(degree) per-iteration list comprehensions of the original loop.
    """

    __slots__ = ("lists", "positions")

    def __init__(self, graph: AttributedGraph) -> None:
        indptr, indices = graph.csr()
        flat = indices.tolist()
        self.lists = [
            flat[indptr[v]:indptr[v + 1]] for v in range(graph.num_nodes)
        ]
        self.positions = [
            {u: i for i, u in enumerate(row)} for row in self.lists
        ]

    def add(self, u: int, v: int) -> None:
        for a, b in ((u, v), (v, u)):
            row = self.lists[a]
            self.positions[a][b] = len(row)
            row.append(b)

    def remove(self, u: int, v: int) -> None:
        for a, b in ((u, v), (v, u)):
            row = self.lists[a]
            positions = self.positions[a]
            i = positions.pop(b)
            last = row.pop()
            if last != b:
                row[i] = last
                positions[last] = i

    def pick(self, v: int, unit: float) -> Optional[int]:
        """Uniform neighbour of ``v`` driven by a pre-drawn unit uniform."""
        row = self.lists[v]
        if not row:
            return None
        return row[min(int(unit * len(row)), len(row) - 1)]

    def pick_excluding(self, v: int, excluded: int, unit: float
                       ) -> Optional[int]:
        """Uniform element of ``Γ(v) \\ {excluded}`` in O(1).

        Skips the excluded element by index arithmetic instead of rejection,
        so the draw stays exactly uniform over the remaining neighbours.
        """
        row = self.lists[v]
        size = len(row)
        excluded_at = self.positions[v].get(excluded)
        if excluded_at is None:
            if size == 0:
                return None
            return row[min(int(unit * size), size - 1)]
        if size == 1:
            return None
        index = min(int(unit * (size - 1)), size - 2)
        if index >= excluded_at:
            index += 1
        return row[index]


class TriCycLeModel(StructuralModel):
    """The TriCycLe generative model.

    Parameters
    ----------
    degrees:
        Desired degree sequence (one entry per node).
    num_triangles:
        Target number of triangles ``n_∆``.
    handle_orphans:
        Enable the orphan extension: exclude degree-one nodes from the π
        distribution, generate ``m - |N_1|`` seed edges, and repair
        disconnected nodes with the Algorithm 2 post-processing step.
    max_iteration_factor:
        The rewiring loop proposes at most ``max_iteration_factor * m`` edges
        before giving up; this keeps generation bounded when the degree
        sequence simply cannot support the requested number of triangles.
    """

    def __init__(self, degrees: np.ndarray, num_triangles: int,
                 handle_orphans: bool = True,
                 max_iteration_factor: int = 30) -> None:
        self._degrees = np.asarray(degrees, dtype=np.int64)
        if self._degrees.ndim != 1:
            raise ValueError("degrees must be one-dimensional")
        if np.any(self._degrees < 0):
            raise ValueError("degrees must be non-negative")
        if num_triangles < 0:
            raise ValueError(f"num_triangles must be non-negative, got {num_triangles}")
        if max_iteration_factor < 1:
            raise ValueError("max_iteration_factor must be >= 1")
        self._num_triangles = int(num_triangles)
        self._handle_orphans = bool(handle_orphans)
        self._max_iteration_factor = int(max_iteration_factor)

    @property
    def degrees(self) -> np.ndarray:
        """The desired degree sequence."""
        return self._degrees

    @property
    def num_triangles(self) -> int:
        """The target triangle count ``n_∆``."""
        return self._num_triangles

    @property
    def target_num_edges(self) -> int:
        """Target number of edges ``m = sum(d_i) / 2``."""
        return int(self._degrees.sum() // 2)

    def generate(self, num_nodes: Optional[int] = None, rng: RngLike = None,
                 acceptance: Optional[EdgeAcceptance] = None) -> AttributedGraph:
        """Generate a TriCycLe graph (Algorithm 1 plus the orphan extension).

        Parameters
        ----------
        num_nodes:
            Number of nodes; defaults to the degree-sequence length and must
            match it when given.
        rng:
            Seed or generator.
        acceptance:
            Optional attribute-dependent acceptance probabilities.  When
            supplied, both the Chung-Lu seed phase and the rewiring phase
            filter proposed edges through them (Section 4).
        """
        n = self._degrees.size if num_nodes is None else int(num_nodes)
        if n != self._degrees.size:
            raise ValueError(
                f"num_nodes ({n}) must match the degree sequence length "
                f"({self._degrees.size})"
            )
        generator = ensure_rng(rng)

        seed_model = ChungLuModel(
            self._degrees,
            bias_correction=True,
            exclude_degree_one=self._handle_orphans,
        )
        graph = seed_model.generate(rng=generator, acceptance=acceptance)
        pi = build_pi_distribution(
            self._degrees, exclude_degree_one=self._handle_orphans
        )
        if self._handle_orphans:
            # The paper applies the orphan repair to the Chung-Lu seed graph
            # as well as to the final output (Section 3.3), so the rewiring
            # phase can compensate for any triangles the repair destroys.
            graph = post_process_graph(
                graph, self._degrees, pi, rng=generator, acceptance=acceptance
            )

        edge_age: Deque[Edge] = deque(sorted(graph.edges()))
        tau = triangle_count(graph)
        target = self._num_triangles
        max_iterations = self._max_iteration_factor * max(graph.num_edges, 1)
        iterations = 0
        sampler = WeightedSampler(pi)
        adjacency = _AdjacencyLists(graph)

        # π proposals and the uniforms driving the two neighbour hops are
        # drawn in blocks; a scalar searchsorted plus two scalar RNG calls
        # per iteration used to dominate the proposal cost.
        block_size = max(256, min(8192, max_iterations))
        vi_block = sampler.sample_many(block_size, generator)
        unit_block = generator.random((block_size, 2))
        cursor = 0

        while tau < target and iterations < max_iterations and graph.num_edges > 0:
            iterations += 1
            if cursor >= block_size:
                vi_block = sampler.sample_many(block_size, generator)
                unit_block = generator.random((block_size, 2))
                cursor = 0
            vi = int(vi_block[cursor])
            hop_one, hop_two = unit_block[cursor]
            cursor += 1

            # Friend-of-a-friend proposal (Algorithm 1, lines 5-9): walk to a
            # random neighbour vk, then to a random neighbour of vk other
            # than vi.
            vk = adjacency.pick(vi, hop_one)
            if vk is None:
                continue
            vj = adjacency.pick_excluding(vk, vi, hop_two)
            if vj is None or vj == vi:
                continue
            if graph.has_edge(vi, vj):
                continue
            if acceptance is not None and not acceptance.accepts(vi, vj, generator):
                continue

            oldest = self._pop_oldest_existing_edge(graph, edge_age)
            if oldest is None:
                break
            vq, vr = oldest
            cn_old = graph.count_common_neighbors(vq, vr)
            graph.remove_edge(vq, vr)
            adjacency.remove(vq, vr)
            cn_new = graph.count_common_neighbors(vi, vj)

            if cn_new >= cn_old:
                graph.add_edge(vi, vj)
                adjacency.add(vi, vj)
                edge_age.append((min(vi, vj), max(vi, vj)))
                tau += cn_new - cn_old
            else:
                # Undo the removal; the retired edge becomes the youngest so
                # the loop cannot get stuck re-proposing the same swap.
                graph.add_edge(vq, vr)
                adjacency.add(vq, vr)
                edge_age.append((vq, vr))

        if self._handle_orphans:
            graph = post_process_graph(
                graph, self._degrees, pi, rng=generator, acceptance=acceptance
            )
        if acceptance is not None and graph.num_attributes == 0:
            # Ensure the attribute dimension matches what AGM expects.
            upgraded = AttributedGraph(graph.num_nodes, acceptance.num_attributes)
            upgraded.add_edges_from(graph.edges())
            graph = upgraded
        return graph

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _pop_oldest_existing_edge(graph: AttributedGraph,
                                  edge_age: Deque[Edge]) -> Optional[Edge]:
        """Pop the oldest edge that still exists in the graph."""
        while edge_age:
            u, v = edge_age.popleft()
            if graph.has_edge(u, v):
                return (u, v)
        return None
