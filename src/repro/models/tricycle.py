"""TriCycLe: the paper's triangle-targeting Chung-Lu model (Algorithm 1).

TriCycLe captures both the degree distribution and the clustering of a
social graph using only two statistics that admit accurate DP estimators:
the degree sequence and the triangle count.  Generation proceeds in two
phases:

1. a Chung-Lu seed graph with the desired degree sequence is generated;
2. edges are iteratively rewired — a "friend of a friend" edge is proposed
   (creating at least one new triangle) and the oldest seed edge is retired —
   until the graph contains the target number of triangles.  Replacements
   that would lower the net triangle count are rejected, which guarantees
   progress and termination with the desired count (up to the attempt
   budget).

The orphan extension of Section 3.3 is supported: degree-one nodes can be
excluded from the π distribution and wired up afterwards by
:func:`repro.models.postprocess.post_process_graph`.
"""

from __future__ import annotations

from collections import deque
from itertools import chain
from typing import Deque, Optional, Set, Tuple

import numpy as np

from repro.graphs.attributed import AttributedGraph
from repro.graphs.statistics import triangle_count
from repro.models.base import EdgeAcceptance, StructuralModel
from repro.models.chung_lu import ChungLuModel, build_pi_distribution
from repro.models.postprocess import post_process_graph
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.sampling import WeightedSampler

Edge = Tuple[int, int]


class _AdjacencyLists:
    """Mutable adjacency lists supporting O(1) uniform neighbour picks.

    Seeded from the graph's CSR view (so the initial per-node ordering is
    deterministic), then kept in sync with the rewiring loop's mutations.
    The swap-with-last removal plus a per-node position map makes ``add``,
    ``remove``, and uniform random selection all O(1) — replacing the
    O(degree) per-iteration list comprehensions of the original loop.
    """

    __slots__ = ("lists", "positions")

    def __init__(self, graph: AttributedGraph) -> None:
        indptr, indices = graph.csr()
        flat = indices.tolist()
        self.lists = [
            flat[indptr[v]:indptr[v + 1]] for v in range(graph.num_nodes)
        ]
        self.positions = [
            {u: i for i, u in enumerate(row)} for row in self.lists
        ]

    def add(self, u: int, v: int) -> None:
        for a, b in ((u, v), (v, u)):
            row = self.lists[a]
            self.positions[a][b] = len(row)
            row.append(b)

    def remove(self, u: int, v: int) -> None:
        for a, b in ((u, v), (v, u)):
            row = self.lists[a]
            positions = self.positions[a]
            i = positions.pop(b)
            last = row.pop()
            if last != b:
                row[i] = last
                positions[last] = i

    def pick(self, v: int, unit: float) -> Optional[int]:
        """Uniform neighbour of ``v`` driven by a pre-drawn unit uniform."""
        row = self.lists[v]
        if not row:
            return None
        return row[min(int(unit * len(row)), len(row) - 1)]

    def pick_excluding(self, v: int, excluded: int, unit: float
                       ) -> Optional[int]:
        """Uniform element of ``Γ(v) \\ {excluded}`` in O(1).

        Skips the excluded element by index arithmetic instead of rejection,
        so the draw stays exactly uniform over the remaining neighbours.
        """
        row = self.lists[v]
        size = len(row)
        excluded_at = self.positions[v].get(excluded)
        if excluded_at is None:
            if size == 0:
                return None
            return row[min(int(unit * size), size - 1)]
        if size == 1:
            return None
        index = min(int(unit * (size - 1)), size - 2)
        if index >= excluded_at:
            index += 1
        return row[index]


class _ProposalBlock:
    """Vectorized evaluation of one block of rewiring proposals.

    The accept/reject test of the rewiring loop is a bulk triangle query:
    for every proposed friend-of-a-friend edge it needs the walk endpoints,
    an adjacency probe, and a common-neighbour count.  Instead of answering
    those per proposal with Python set operations, this class snapshots the
    live adjacency structure once per block (flattened rows in *live* order
    plus a sorted directed-edge key array, i.e. a CSR view) and evaluates
    the whole block in a handful of NumPy passes.

    Exactness contract: every precomputed answer depends only on the
    adjacency rows of the nodes involved (``vi`` for the first hop, ``vk``
    for the second, ``{vi, vj}`` for the probe and the count).  The rewiring
    loop tracks the nodes whose rows mutated since the snapshot (the *dirty*
    set) and falls back to the live per-proposal path for any proposal that
    touches one, so the batched loop is bit-identical to the sequential
    implementation — the equivalence test in
    ``tests/models/test_tricycle.py`` pins this.

    The walk endpoints and adjacency probes of the whole block are computed
    eagerly (they share the sorted-key machinery); the common-neighbour
    counts — the expensive part — are evaluated lazily in vectorized
    windows of :data:`_CN_WINDOW` proposals on first access, because high-π
    (high-degree) nodes go dirty quickly and the tail of a block often
    never consults its counts.
    """

    __slots__ = ("_vk", "_vj", "_has_edge", "_cn", "_cn_ready", "_n",
                 "_flat", "_indptr", "_lengths", "_sorted_keys", "_block_vi")

    #: Proposals per lazily evaluated common-neighbour window.
    _CN_WINDOW = 1024

    def __init__(self, adjacency: _AdjacencyLists, num_nodes: int,
                 vi_block: np.ndarray, unit_block: np.ndarray) -> None:
        n = num_nodes
        size = int(vi_block.size)
        lists = adjacency.lists
        lengths = np.fromiter((len(row) for row in lists), dtype=np.int64, count=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        total = int(indptr[-1])

        self._vk = np.full(size, -1, dtype=np.int64)
        self._vj = np.full(size, -1, dtype=np.int64)
        self._has_edge = np.zeros(size, dtype=bool)
        self._cn = np.zeros(size, dtype=np.int64)
        self._cn_ready = np.zeros(
            (size + self._CN_WINDOW - 1) // self._CN_WINDOW, dtype=bool
        )
        self._n = n
        self._flat: Optional[np.ndarray] = None
        self._indptr = indptr
        self._lengths = lengths
        self._sorted_keys: Optional[np.ndarray] = None
        self._block_vi = vi_block.astype(np.int64, copy=False)
        if total == 0 or size == 0:
            return

        # Snapshot: rows flattened in live order, plus the globally sorted
        # directed-edge keys (= a CSR view with sorted neighbour lists) and,
        # aligned with them, each entry's position inside its live row.
        flat = np.fromiter(chain.from_iterable(lists), dtype=np.int64, count=total)
        owners = np.repeat(np.arange(n, dtype=np.int64), lengths)
        keys = owners * n + flat
        order = np.argsort(keys)
        sorted_keys = keys[order]
        live_positions = (np.arange(total, dtype=np.int64) - indptr[owners])[order]

        # Hop one: vk = Γ(vi)[min(int(u1 · |Γ(vi)|), |Γ(vi)| − 1)], exactly
        # as _AdjacencyLists.pick computes it.
        vi = vi_block.astype(np.int64, copy=False)
        deg_vi = lengths[vi]
        reachable = deg_vi > 0
        hop_one = np.minimum(
            (unit_block[:, 0] * deg_vi).astype(np.int64), deg_vi - 1
        )
        # Unreachable rows may sit past the last flat entry (indptr[vi] ==
        # total), so the gather index must be masked, not just the result.
        vk = flat[np.where(reachable, indptr[vi] + hop_one, 0)]
        self._vk[reachable] = vk[reachable]

        # Hop two replicates pick_excluding: vi is always a member of Γ(vk)
        # on the snapshot (symmetry), so look up its live-row position via
        # the sorted keys and skip it by index arithmetic.
        lookup = np.searchsorted(sorted_keys, vk * n + vi)
        lookup = np.minimum(lookup, total - 1)
        pos_vi = live_positions[lookup]
        size_k = lengths[vk]
        valid = reachable & (size_k > 1)
        hop_two = np.minimum(
            (unit_block[:, 1] * (size_k - 1)).astype(np.int64),
            np.maximum(size_k - 2, 0),
        )
        hop_two = hop_two + (hop_two >= pos_vi)
        vj = flat[np.where(valid, indptr[vk] + hop_two, 0)]
        self._vj[valid] = vj[valid]

        # Adjacency probe for the surviving pairs, against the sorted
        # snapshot keys; the arrays are retained for the lazy count windows.
        pair_keys = vi * n + vj
        probe = np.minimum(np.searchsorted(sorted_keys, pair_keys), total - 1)
        self._has_edge = valid & (sorted_keys[probe] == pair_keys)
        self._flat = flat
        self._sorted_keys = sorted_keys

    def _materialize_cn_window(self, window: int) -> None:
        """Count common neighbours for one window of proposals, vectorized."""
        self._cn_ready[window] = True
        start = window * self._CN_WINDOW
        stop = min(start + self._CN_WINDOW, self._vj.size)
        ids = np.flatnonzero(
            (self._vj[start:stop] >= 0) & ~self._has_edge[start:stop]
        ) + start
        if not ids.size or self._flat is None:
            return
        n = self._n
        flat, indptr, lengths = self._flat, self._indptr, self._lengths
        sorted_keys = self._sorted_keys
        total = sorted_keys.size
        vi = self._block_vi[ids]
        vj = self._vj[ids]
        # Enumerate Γ(a) of the lower-degree endpoint of every pair and
        # test membership in Γ(b) with one searchsorted pass.
        pick_vi = lengths[vi] <= lengths[vj]
        a = np.where(pick_vi, vi, vj)
        b = np.where(pick_vi, vj, vi)
        counts = lengths[a]
        entries = int(counts.sum())
        if not entries:
            return
        previous = np.concatenate(([0], np.cumsum(counts)[:-1]))
        local = np.arange(entries, dtype=np.int64) - np.repeat(previous, counts)
        neighbours = flat[np.repeat(indptr[a], counts) + local]
        pair_of_entry = np.repeat(np.arange(ids.size), counts)
        member_keys = np.repeat(b, counts) * n + neighbours
        member_pos = np.minimum(
            np.searchsorted(sorted_keys, member_keys), total - 1
        )
        hits = sorted_keys[member_pos] == member_keys
        self._cn[ids] = np.bincount(
            pair_of_entry, weights=hits, minlength=ids.size
        ).astype(np.int64)

    def vk(self, index: int) -> Optional[int]:
        """First-hop endpoint of proposal ``index`` (``None``: no neighbour)."""
        value = self._vk[index]
        return None if value < 0 else int(value)

    def vj(self, index: int) -> Optional[int]:
        """Second-hop endpoint (``None``: Γ(vk) \\ {vi} was empty)."""
        value = self._vj[index]
        return None if value < 0 else int(value)

    def has_edge(self, index: int) -> bool:
        """Whether the proposed edge already existed on the snapshot."""
        return bool(self._has_edge[index])

    def common_neighbours(self, index: int) -> int:
        """Snapshot common-neighbour count of the proposed pair."""
        window = index // self._CN_WINDOW
        if not self._cn_ready[window]:
            self._materialize_cn_window(window)
        return int(self._cn[index])


class TriCycLeModel(StructuralModel):
    """The TriCycLe generative model.

    Parameters
    ----------
    degrees:
        Desired degree sequence (one entry per node).
    num_triangles:
        Target number of triangles ``n_∆``.
    handle_orphans:
        Enable the orphan extension: exclude degree-one nodes from the π
        distribution, generate ``m - |N_1|`` seed edges, and repair
        disconnected nodes with the Algorithm 2 post-processing step.
    max_iteration_factor:
        The rewiring loop proposes at most ``max_iteration_factor * m`` edges
        before giving up; this keeps generation bounded when the degree
        sequence simply cannot support the requested number of triangles.
    batch_proposals:
        Evaluate proposal blocks (walk endpoints, adjacency probes,
        common-neighbour counts) in one vectorized pass per block against a
        CSR snapshot, falling back to the live per-proposal path only for
        proposals that touch a mutated node.  Bit-identical to the
        sequential evaluation (``False`` keeps the original loop, used by
        the equivalence tests and the perf harness).
    """

    def __init__(self, degrees: np.ndarray, num_triangles: int,
                 handle_orphans: bool = True,
                 max_iteration_factor: int = 30,
                 batch_proposals: bool = True) -> None:
        self._degrees = np.asarray(degrees, dtype=np.int64)
        if self._degrees.ndim != 1:
            raise ValueError("degrees must be one-dimensional")
        if np.any(self._degrees < 0):
            raise ValueError("degrees must be non-negative")
        if num_triangles < 0:
            raise ValueError(f"num_triangles must be non-negative, got {num_triangles}")
        if max_iteration_factor < 1:
            raise ValueError("max_iteration_factor must be >= 1")
        self._num_triangles = int(num_triangles)
        self._handle_orphans = bool(handle_orphans)
        self._max_iteration_factor = int(max_iteration_factor)
        self._batch_proposals = bool(batch_proposals)

    @property
    def degrees(self) -> np.ndarray:
        """The desired degree sequence."""
        return self._degrees

    @property
    def num_triangles(self) -> int:
        """The target triangle count ``n_∆``."""
        return self._num_triangles

    @property
    def target_num_edges(self) -> int:
        """Target number of edges ``m = sum(d_i) / 2``."""
        return int(self._degrees.sum() // 2)

    def generate(self, num_nodes: Optional[int] = None, rng: RngLike = None,
                 acceptance: Optional[EdgeAcceptance] = None) -> AttributedGraph:
        """Generate a TriCycLe graph (Algorithm 1 plus the orphan extension).

        Parameters
        ----------
        num_nodes:
            Number of nodes; defaults to the degree-sequence length and must
            match it when given.
        rng:
            Seed or generator.
        acceptance:
            Optional attribute-dependent acceptance probabilities.  When
            supplied, both the Chung-Lu seed phase and the rewiring phase
            filter proposed edges through them (Section 4).
        """
        n = self._degrees.size if num_nodes is None else int(num_nodes)
        if n != self._degrees.size:
            raise ValueError(
                f"num_nodes ({n}) must match the degree sequence length "
                f"({self._degrees.size})"
            )
        generator = ensure_rng(rng)

        seed_model = ChungLuModel(
            self._degrees,
            bias_correction=True,
            exclude_degree_one=self._handle_orphans,
        )
        graph = seed_model.generate(rng=generator, acceptance=acceptance)
        pi = build_pi_distribution(
            self._degrees, exclude_degree_one=self._handle_orphans
        )
        if self._handle_orphans:
            # The paper applies the orphan repair to the Chung-Lu seed graph
            # as well as to the final output (Section 3.3), so the rewiring
            # phase can compensate for any triangles the repair destroys.
            graph = post_process_graph(
                graph, self._degrees, pi, rng=generator, acceptance=acceptance
            )

        edge_age: Deque[Edge] = deque(sorted(graph.edges()))
        tau = triangle_count(graph)
        target = self._num_triangles
        max_iterations = self._max_iteration_factor * max(graph.num_edges, 1)
        iterations = 0
        sampler = WeightedSampler(pi)
        adjacency = _AdjacencyLists(graph)

        # π proposals and the uniforms driving the two neighbour hops are
        # drawn in blocks; a scalar searchsorted plus two scalar RNG calls
        # per iteration used to dominate the proposal cost.  With
        # batch_proposals the walk endpoints, adjacency probes and
        # common-neighbour counts of a whole block are additionally
        # evaluated in one vectorized pass against a snapshot; the dirty
        # set names the nodes whose rows mutated since, for which the
        # per-proposal live path answers instead (identical results).
        block_size = max(256, min(8192, max_iterations))
        vi_block = sampler.sample_many(block_size, generator)
        unit_block = generator.random((block_size, 2))
        cursor = 0
        batching = (self._batch_proposals and graph.num_edges > 0
                    and tau < target)
        batch = (_ProposalBlock(adjacency, n, vi_block, unit_block)
                 if batching else None)
        dirty: Set[int] = set()

        while tau < target and iterations < max_iterations and graph.num_edges > 0:
            iterations += 1
            if cursor >= block_size:
                vi_block = sampler.sample_many(block_size, generator)
                unit_block = generator.random((block_size, 2))
                cursor = 0
                if batching:
                    batch = _ProposalBlock(adjacency, n, vi_block, unit_block)
                    dirty.clear()
            index = cursor
            vi = int(vi_block[index])
            hop_one, hop_two = unit_block[index]
            cursor += 1

            # Friend-of-a-friend proposal (Algorithm 1, lines 5-9): walk to a
            # random neighbour vk, then to a random neighbour of vk other
            # than vi.
            cn_hint: Optional[int] = None
            if batch is not None and vi not in dirty:
                vk = batch.vk(index)
                if vk is None:
                    continue
                if vk in dirty:
                    vj = adjacency.pick_excluding(vk, vi, hop_two)
                else:
                    vj = batch.vj(index)
                    if vj is not None and vj not in dirty:
                        if batch.has_edge(index):
                            continue
                        cn_hint = batch.common_neighbours(index)
            else:
                vk = adjacency.pick(vi, hop_one)
                if vk is None:
                    continue
                vj = adjacency.pick_excluding(vk, vi, hop_two)
            if vj is None or vj == vi:
                continue
            if cn_hint is None and graph.has_edge(vi, vj):
                continue
            if acceptance is not None and not acceptance.accepts(vi, vj, generator):
                continue

            oldest = self._pop_oldest_existing_edge(graph, edge_age)
            if oldest is None:
                break
            vq, vr = oldest
            cn_old = graph.count_common_neighbors(vq, vr)
            graph.remove_edge(vq, vr)
            adjacency.remove(vq, vr)
            if batch is not None:
                # Even a rejected swap perturbs the live row order of vq/vr
                # (swap-with-last removal plus re-append), so their
                # snapshot answers are stale either way.
                dirty.add(vq)
                dirty.add(vr)
            if cn_hint is not None and vq != vi and vq != vj \
                    and vr != vi and vr != vj:
                cn_new = cn_hint
            else:
                cn_new = graph.count_common_neighbors(vi, vj)

            if cn_new >= cn_old:
                graph.add_edge(vi, vj)
                adjacency.add(vi, vj)
                if batch is not None:
                    dirty.add(vi)
                    dirty.add(vj)
                edge_age.append((min(vi, vj), max(vi, vj)))
                tau += cn_new - cn_old
            else:
                # Undo the removal; the retired edge becomes the youngest so
                # the loop cannot get stuck re-proposing the same swap.
                graph.add_edge(vq, vr)
                adjacency.add(vq, vr)
                edge_age.append((vq, vr))

        if self._handle_orphans:
            graph = post_process_graph(
                graph, self._degrees, pi, rng=generator, acceptance=acceptance
            )
        if acceptance is not None and graph.num_attributes == 0:
            # Ensure the attribute dimension matches what AGM expects.
            upgraded = AttributedGraph(graph.num_nodes, acceptance.num_attributes)
            upgraded.add_edges_from(graph.edges())
            graph = upgraded
        return graph

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _pop_oldest_existing_edge(graph: AttributedGraph,
                                  edge_age: Deque[Edge]) -> Optional[Edge]:
        """Pop the oldest edge that still exists in the graph."""
        while edge_age:
            u, v = edge_age.popleft()
            if graph.has_edge(u, v):
                return (u, v)
        return None
