"""TriCycLe: the paper's triangle-targeting Chung-Lu model (Algorithm 1).

TriCycLe captures both the degree distribution and the clustering of a
social graph using only two statistics that admit accurate DP estimators:
the degree sequence and the triangle count.  Generation proceeds in two
phases:

1. a Chung-Lu seed graph with the desired degree sequence is generated;
2. edges are iteratively rewired — a "friend of a friend" edge is proposed
   (creating at least one new triangle) and the oldest seed edge is retired —
   until the graph contains the target number of triangles.  Replacements
   that would lower the net triangle count are rejected, which guarantees
   progress and termination with the desired count (up to the attempt
   budget).

The orphan extension of Section 3.3 is supported: degree-one nodes can be
excluded from the π distribution and wired up afterwards by
:func:`repro.models.postprocess.post_process_graph`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

import numpy as np

from repro.graphs.attributed import AttributedGraph
from repro.graphs.statistics import triangle_count
from repro.models.base import EdgeAcceptance, StructuralModel
from repro.models.chung_lu import ChungLuModel, build_pi_distribution
from repro.models.postprocess import post_process_graph
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.sampling import WeightedSampler

Edge = Tuple[int, int]


class TriCycLeModel(StructuralModel):
    """The TriCycLe generative model.

    Parameters
    ----------
    degrees:
        Desired degree sequence (one entry per node).
    num_triangles:
        Target number of triangles ``n_∆``.
    handle_orphans:
        Enable the orphan extension: exclude degree-one nodes from the π
        distribution, generate ``m - |N_1|`` seed edges, and repair
        disconnected nodes with the Algorithm 2 post-processing step.
    max_iteration_factor:
        The rewiring loop proposes at most ``max_iteration_factor * m`` edges
        before giving up; this keeps generation bounded when the degree
        sequence simply cannot support the requested number of triangles.
    """

    def __init__(self, degrees: np.ndarray, num_triangles: int,
                 handle_orphans: bool = True,
                 max_iteration_factor: int = 30) -> None:
        self._degrees = np.asarray(degrees, dtype=np.int64)
        if self._degrees.ndim != 1:
            raise ValueError("degrees must be one-dimensional")
        if np.any(self._degrees < 0):
            raise ValueError("degrees must be non-negative")
        if num_triangles < 0:
            raise ValueError(f"num_triangles must be non-negative, got {num_triangles}")
        if max_iteration_factor < 1:
            raise ValueError("max_iteration_factor must be >= 1")
        self._num_triangles = int(num_triangles)
        self._handle_orphans = bool(handle_orphans)
        self._max_iteration_factor = int(max_iteration_factor)

    @property
    def degrees(self) -> np.ndarray:
        """The desired degree sequence."""
        return self._degrees

    @property
    def num_triangles(self) -> int:
        """The target triangle count ``n_∆``."""
        return self._num_triangles

    @property
    def target_num_edges(self) -> int:
        """Target number of edges ``m = sum(d_i) / 2``."""
        return int(self._degrees.sum() // 2)

    def generate(self, num_nodes: Optional[int] = None, rng: RngLike = None,
                 acceptance: Optional[EdgeAcceptance] = None) -> AttributedGraph:
        """Generate a TriCycLe graph (Algorithm 1 plus the orphan extension).

        Parameters
        ----------
        num_nodes:
            Number of nodes; defaults to the degree-sequence length and must
            match it when given.
        rng:
            Seed or generator.
        acceptance:
            Optional attribute-dependent acceptance probabilities.  When
            supplied, both the Chung-Lu seed phase and the rewiring phase
            filter proposed edges through them (Section 4).
        """
        n = self._degrees.size if num_nodes is None else int(num_nodes)
        if n != self._degrees.size:
            raise ValueError(
                f"num_nodes ({n}) must match the degree sequence length "
                f"({self._degrees.size})"
            )
        generator = ensure_rng(rng)

        seed_model = ChungLuModel(
            self._degrees,
            bias_correction=True,
            exclude_degree_one=self._handle_orphans,
        )
        graph = seed_model.generate(rng=generator, acceptance=acceptance)
        pi = build_pi_distribution(
            self._degrees, exclude_degree_one=self._handle_orphans
        )
        if self._handle_orphans:
            # The paper applies the orphan repair to the Chung-Lu seed graph
            # as well as to the final output (Section 3.3), so the rewiring
            # phase can compensate for any triangles the repair destroys.
            graph = post_process_graph(
                graph, self._degrees, pi, rng=generator, acceptance=acceptance
            )

        edge_age: Deque[Edge] = deque(sorted(graph.edges()))
        tau = triangle_count(graph)
        target = self._num_triangles
        max_iterations = self._max_iteration_factor * max(graph.num_edges, 1)
        iterations = 0
        sampler = WeightedSampler(pi)

        while tau < target and iterations < max_iterations and graph.num_edges > 0:
            iterations += 1
            proposal = self._propose_transitive_edge(graph, sampler, generator)
            if proposal is None:
                continue
            vi, vj = proposal
            if graph.has_edge(vi, vj):
                continue
            if acceptance is not None and not acceptance.accepts(vi, vj, generator):
                continue

            oldest = self._pop_oldest_existing_edge(graph, edge_age)
            if oldest is None:
                break
            vq, vr = oldest
            cn_old = len(graph.common_neighbors(vq, vr))
            graph.remove_edge(vq, vr)
            cn_new = len(graph.common_neighbors(vi, vj))

            if cn_new >= cn_old:
                graph.add_edge(vi, vj)
                edge_age.append((min(vi, vj), max(vi, vj)))
                tau += cn_new - cn_old
            else:
                # Undo the removal; the retired edge becomes the youngest so
                # the loop cannot get stuck re-proposing the same swap.
                graph.add_edge(vq, vr)
                edge_age.append((vq, vr))

        if self._handle_orphans:
            graph = post_process_graph(
                graph, self._degrees, pi, rng=generator, acceptance=acceptance
            )
        if acceptance is not None and graph.num_attributes == 0:
            # Ensure the attribute dimension matches what AGM expects.
            upgraded = AttributedGraph(graph.num_nodes, acceptance.num_attributes)
            upgraded.add_edges_from(graph.edges())
            graph = upgraded
        return graph

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _propose_transitive_edge(graph: AttributedGraph, sampler: WeightedSampler,
                                 generator: np.random.Generator
                                 ) -> Optional[Edge]:
        """Propose a friend-of-a-friend edge: lines 5-9 of Algorithm 1."""
        vi = sampler.sample(generator)
        neighbours_i = [v for v in graph.neighbor_set(vi) if v != vi]
        if not neighbours_i:
            return None
        vk = int(neighbours_i[generator.integers(len(neighbours_i))])
        neighbours_k = [v for v in graph.neighbor_set(vk) if v != vi]
        if not neighbours_k:
            return None
        vj = int(neighbours_k[generator.integers(len(neighbours_k))])
        if vj == vi:
            return None
        return (vi, vj)

    @staticmethod
    def _pop_oldest_existing_edge(graph: AttributedGraph,
                                  edge_age: Deque[Edge]) -> Optional[Edge]:
        """Pop the oldest edge that still exists in the graph."""
        while edge_age:
            u, v = edge_age.popleft()
            if graph.has_edge(u, v):
                return (u, v)
        return None
