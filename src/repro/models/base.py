"""Common interface for structural models.

AGM treats the structural model as a black box that can generate an edge set
over a fresh node set, optionally filtering proposed edges through
attribute-dependent acceptance probabilities (Section 4).  Every model in
this package implements :class:`StructuralModel`; the acceptance hook is
encapsulated by :class:`EdgeAcceptance` so the models never need to know how
the probabilities were derived.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.attributes.encoding import EdgeConfigurationEncoder
from repro.graphs.attributed import AttributedGraph
from repro.utils.rng import RngLike


@dataclass(frozen=True)
class EdgeAcceptance:
    """Attribute-dependent edge acceptance probabilities.

    Wraps the acceptance vector ``A`` computed by AGM (Algorithm 3,
    lines 9-18) together with the node-configuration codes of the synthetic
    node set, so a structural model can answer "with what probability should
    a proposed edge ``{u, v}`` be accepted?" in constant time.

    Attributes
    ----------
    probabilities:
        Array indexed by edge-configuration code, values in ``[0, 1]``.
    node_codes:
        Array of length ``n`` giving the attribute-configuration code of each
        synthetic node.
    num_attributes:
        The attribute dimension ``w`` (used to build the pair encoder).
    """

    probabilities: np.ndarray
    node_codes: np.ndarray
    num_attributes: int

    def __post_init__(self) -> None:
        encoder = EdgeConfigurationEncoder(self.num_attributes)
        probs = np.asarray(self.probabilities, dtype=float)
        if probs.shape != (encoder.num_configurations,):
            raise ValueError(
                f"probabilities must have length {encoder.num_configurations}, "
                f"got shape {probs.shape}"
            )
        if np.any(probs < 0) or np.any(probs > 1):
            raise ValueError("acceptance probabilities must lie in [0, 1]")
        codes = np.asarray(self.node_codes, dtype=np.int64)
        if codes.ndim != 1:
            raise ValueError("node_codes must be one-dimensional")
        if codes.size and (codes.min() < 0 or codes.max() >= (1 << self.num_attributes)):
            raise ValueError("node_codes contain values outside the configuration range")
        object.__setattr__(self, "probabilities", probs)
        object.__setattr__(self, "node_codes", codes)
        object.__setattr__(self, "_encoder", encoder)

    def probability(self, u: int, v: int) -> float:
        """Acceptance probability for the proposed edge ``{u, v}``."""
        encoder: EdgeConfigurationEncoder = object.__getattribute__(self, "_encoder")
        code = encoder.encode_codes(int(self.node_codes[u]), int(self.node_codes[v]))
        return float(self.probabilities[code])

    def accepts(self, u: int, v: int, rng: np.random.Generator) -> bool:
        """Randomly decide whether to accept the proposed edge ``{u, v}``."""
        return rng.random() <= self.probability(u, v)

    def pair_probabilities(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Vectorized acceptance probabilities for parallel endpoint arrays."""
        encoder: EdgeConfigurationEncoder = object.__getattribute__(self, "_encoder")
        codes = self.node_codes
        pair_codes = encoder.encode_codes_array(codes[us], codes[vs])
        return self.probabilities[pair_codes]


class StructuralModel(abc.ABC):
    """Abstract base class for generative structural models.

    A structural model owns its fitted parameters (degree sequence, triangle
    count, edge count, ...) and exposes :meth:`generate`, which produces a
    fresh synthetic graph over ``num_nodes`` nodes.  When an
    :class:`EdgeAcceptance` is supplied, proposed edges are additionally
    filtered through the attribute-dependent acceptance probabilities, which
    is how AGM couples structure with attributes.
    """

    @abc.abstractmethod
    def generate(self, num_nodes: int, rng: RngLike = None,
                 acceptance: Optional[EdgeAcceptance] = None) -> AttributedGraph:
        """Generate a synthetic graph with ``num_nodes`` nodes.

        Implementations must return a graph whose attributes are all zero;
        AGM assigns attribute vectors separately.
        """

    @property
    @abc.abstractmethod
    def target_num_edges(self) -> int:
        """The number of edges the model aims to generate."""
