"""The Chung-Lu random graph model and its fast implementation (FCL / cFCL).

In the Chung-Lu (CL) model every node is assigned a desired degree and edges
are sampled with probability proportional to the product of the endpoint
degrees, which reproduces the expected degree sequence.  The fast variant
(FCL, Pinar et al.) samples endpoints from the π distribution — node ``i``
with probability ``d_i / 2m`` — and inserts the resulting edge; repeated
edges and self-loops are discarded and resampled, and the bias-corrected
variant (cFCL) compensates for the resulting under-representation of
low-degree nodes by continuing to sample until the target number of distinct
edges is reached while tracking residual degree demand.

This is both a figure baseline (Figures 2 and 3) and the seed-graph
generator used inside TriCycLe and TCL.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.attributed import AttributedGraph
from repro.models.base import EdgeAcceptance, StructuralModel
from repro.utils.membership import DynamicKeySet
from repro.utils.memory import MemoryBudget, csr_bytes
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.sampling import WeightedSampler

#: Pessimistic bytes of transient state per drawn endpoint pair in the
#: vectorized samplers: two int64 endpoint blocks, the lo/hi canonical
#: orientation, the validity mask, an acceptance coin, and the raw key plus
#: its sort scratch.  Used to derive the byte-budgeted shard cap.
_SAMPLE_ROW_BYTES = 96


def build_pi_distribution(degrees: np.ndarray,
                          exclude_degree_one: bool = False) -> np.ndarray:
    """Build the π node-sampling distribution from a desired degree sequence.

    ``π(i) ∝ d_i``.  When ``exclude_degree_one`` is set (the TriCycLe orphan
    extension), nodes with desired degree exactly one receive zero weight —
    they are wired up later by the post-processing step instead.  If every
    node would be excluded, the plain degree-proportional distribution is
    returned so generation can still proceed.
    """
    weights = np.asarray(degrees, dtype=float).copy()
    if weights.ndim != 1:
        raise ValueError(f"degrees must be one-dimensional, got shape {weights.shape}")
    weights = np.clip(weights, 0.0, None)
    if exclude_degree_one:
        adjusted = np.where(np.asarray(degrees) == 1, 0.0, weights)
        if adjusted.sum() > 0:
            weights = adjusted
    total = weights.sum()
    if total <= 0:
        # Degenerate case: no positive degrees.  Fall back to uniform so the
        # samplers stay well-defined; they will generate zero or few edges.
        return np.full(weights.shape, 1.0 / max(1, weights.size))
    return weights / total


class ChungLuModel(StructuralModel):
    """Fast Chung-Lu generator with optional bias correction.

    Parameters
    ----------
    degrees:
        Desired degree sequence (one entry per node of the generated graph).
    bias_correction:
        When true (default, the "cFCL" variant), sampling continues until the
        target number of *distinct* edges has been inserted; when false, the
        classical FCL behaviour of drawing exactly ``m`` endpoint pairs and
        discarding collisions is used, which under-generates edges on skewed
        degree sequences.
    max_attempt_factor:
        Safety bound: at most ``max_attempt_factor * m`` endpoint pairs are
        drawn, so pathological acceptance probabilities cannot hang the
        generator.
    vectorized:
        When true (default), endpoints are drawn in blocks through
        :class:`~repro.utils.sampling.WeightedSampler`, self-loops and
        duplicate proposals are discarded with vectorized key operations,
        and acceptance probabilities are applied in bulk.  When false, the
        original per-edge sampling loop is used — kept only as the perf
        baseline for ``scripts/bench_perf.py`` and for A/B debugging; the
        two paths target the same distribution but consume the RNG
        differently, so they produce different graphs for the same seed.
    memory_budget_mb:
        Optional byte budget for generation.  When set (or when the
        ``REPRO_MEMORY_BUDGET_MB`` environment variable provides a default),
        the vectorized samplers draw endpoint blocks in shards whose
        transient footprint fits the budget, and the final edge store is
        admitted against the budget before sampling begins (raising
        :class:`~repro.utils.memory.MemoryBudgetError` when it cannot fit).
        When the shard cap does not bind, the sampling schedule — and hence
        the generated graph for a given seed — is bit-identical to the
        unbudgeted path.
    """

    def __init__(self, degrees: np.ndarray, bias_correction: bool = True,
                 exclude_degree_one: bool = False,
                 max_attempt_factor: int = 50,
                 vectorized: bool = True,
                 memory_budget_mb: Optional[int] = None) -> None:
        self._degrees = np.asarray(degrees, dtype=np.int64)
        if self._degrees.ndim != 1:
            raise ValueError("degrees must be one-dimensional")
        if np.any(self._degrees < 0):
            raise ValueError("degrees must be non-negative")
        if max_attempt_factor < 1:
            raise ValueError("max_attempt_factor must be >= 1")
        self._bias_correction = bool(bias_correction)
        self._exclude_degree_one = bool(exclude_degree_one)
        self._max_attempt_factor = int(max_attempt_factor)
        self._vectorized = bool(vectorized)
        self._memory_budget = MemoryBudget.resolve(memory_budget_mb)

    @property
    def degrees(self) -> np.ndarray:
        """The desired degree sequence."""
        return self._degrees

    @property
    def target_num_edges(self) -> int:
        """Target number of edges, ``m = sum(d_i) / 2``."""
        return int(self._degrees.sum() // 2)

    def effective_target_edges(self) -> int:
        """Target edge count after the degree-one exclusion, ``m - |N_1|``.

        The TriCycLe orphan extension generates ``m - |N_1|`` seed edges and
        wires the degree-one nodes up in post-processing (Section 3.3).
        """
        target = self.target_num_edges
        if self._exclude_degree_one:
            degree_one = int(np.count_nonzero(self._degrees == 1))
            target = max(0, target - degree_one)
        return target

    def pi_distribution(self) -> np.ndarray:
        """The π endpoint-sampling distribution for this degree sequence."""
        return build_pi_distribution(
            self._degrees, exclude_degree_one=self._exclude_degree_one
        )

    def generate(self, num_nodes: Optional[int] = None, rng: RngLike = None,
                 acceptance: Optional[EdgeAcceptance] = None) -> AttributedGraph:
        """Generate a Chung-Lu graph.

        Parameters
        ----------
        num_nodes:
            Number of nodes; defaults to the length of the degree sequence
            and must match it when provided.
        rng:
            Seed or generator.
        acceptance:
            Optional attribute-dependent acceptance probabilities (AGM).

        Returns
        -------
        AttributedGraph
            A simple graph with approximately the desired degree sequence and
            no attributes set.
        """
        n = self._degrees.size if num_nodes is None else int(num_nodes)
        if n != self._degrees.size:
            raise ValueError(
                f"num_nodes ({n}) must match the degree sequence length "
                f"({self._degrees.size})"
            )
        generator = ensure_rng(rng)
        num_attributes = acceptance.num_attributes if acceptance is not None else 0
        target_edges = self.effective_target_edges()
        if n < 2 or target_edges == 0:
            return AttributedGraph(n, num_attributes)

        pi = self.pi_distribution()
        max_attempts = self._max_attempt_factor * max(target_edges, 1)
        # Admit the durable output before any sampling: the accepted key
        # arrays (concat + sort scratch, ~4 int64 copies at peak) plus the
        # base CSR the result graph will own (2m directed entries).  The
        # shard cap below bounds the *transient* per-round footprint; this
        # bounds what generation leaves resident.
        self._memory_budget.admit(
            "chung_lu.generate",
            4 * 8 * target_edges + csr_bytes(n, target_edges),
        )

        if self._vectorized:
            if self._bias_correction:
                keys = self._sample_corrected(
                    n, pi, target_edges, max_attempts, generator, acceptance
                )
            else:
                keys = self._sample_plain(
                    n, pi, target_edges, generator, acceptance
                )
            return AttributedGraph._from_canonical_keys(n, keys, num_attributes)

        graph = AttributedGraph(n, num_attributes)
        if self._bias_correction:
            self._generate_corrected_reference(
                graph, pi, target_edges, max_attempts, generator, acceptance
            )
        else:
            self._generate_plain_reference(
                graph, pi, target_edges, generator, acceptance
            )
        return graph

    # ------------------------------------------------------------------
    # Internal sampling strategies (batched fast paths)
    # ------------------------------------------------------------------
    @staticmethod
    def _dedupe_sorted(keys: np.ndarray) -> np.ndarray:
        """Sort ``keys`` in place and drop duplicates (manual, as
        ``np.unique`` is measurably slower than a plain sort here)."""
        keys.sort()
        if keys.size < 2:
            return keys
        return keys[np.concatenate(([True], keys[1:] != keys[:-1]))]

    def _sample_corrected(self, n: int, pi: np.ndarray, target_edges: int,
                          max_attempts: int, generator: np.random.Generator,
                          acceptance: Optional[EdgeAcceptance]) -> np.ndarray:
        """cFCL: keep sampling until ``target_edges`` distinct edges exist.

        Endpoint blocks come from :meth:`WeightedSampler.sample_many` (the π
        distribution is preprocessed once, not per batch), proposals are
        deduplicated on the encoded keys ``min * n + max``, and acceptance
        probabilities are evaluated in bulk with one coin per drawn pair —
        matching the sequential loop's per-attempt accept/reject semantics.
        Cross-round collision tracking (a partitioned key bitmap within its
        byte budget, a sorted key array otherwise — see
        :mod:`repro.utils.membership`) is only instantiated if the first
        round leaves a shortfall.  When a batch overshoots the target, the
        admitted subset is drawn *weighted by proposal multiplicity*
        (Efraimidis–Spirakis weighted sampling without replacement): the
        first occurrences of distinct keys in a uniformly ordered multiset
        follow the Plackett–Luce distribution with multiplicity weights, so
        this reproduces the sequential loop's "first ``target`` distinct
        edges by arrival" distribution — a uniform subset would
        under-represent high-π edges.  Returns the unique canonical edge
        keys.

        Under a memory budget each round's batch is additionally capped so
        its transient working set (endpoint blocks, masks, coins, raw keys)
        fits the remaining bytes; when the cap does not bind the round
        schedule — and hence the RNG stream and output — is bit-identical
        to the unbudgeted path.  A binding cap just splits rounds, which
        the cross-round collision tracking already makes exact.
        """
        sampler = WeightedSampler(pi)
        shard_cap = self._memory_budget.shard_rows(
            _SAMPLE_ROW_BYTES, minimum=2048
        )
        seen: Optional[DynamicKeySet] = None
        seen_budget = self._memory_budget.remaining_bytes()
        accepted = []
        count = 0
        attempts = 0
        while count < target_edges and attempts < max_attempts:
            remaining = target_edges - count
            # Oversample the shortfall so self-loops and collisions rarely
            # force a refill round: 2x when the shortfall is small (a second
            # round's fixed cost would dominate), 1.4x for large batches.
            oversampled = 2 * remaining if remaining < 8192 \
                else (remaining * 7) // 5
            batch = min(max(2048, oversampled), max_attempts - attempts,
                        shard_cap)
            # Only one endpoint block needs shuffling: pairing a sorted
            # multiset against an independently shuffled one is a uniform
            # random matching, identical in distribution to i.i.d. pairs.
            us = sampler.sample_many(batch, generator, shuffle=False)
            vs = sampler.sample_many(batch, generator)
            attempts += batch
            lo = np.minimum(us, vs)
            hi = np.maximum(us, vs)
            valid = lo != hi
            if acceptance is not None:
                coins = generator.random(batch)
                valid &= coins <= acceptance.pair_probabilities(us, vs)
            raw = lo[valid] * n + hi[valid]
            if raw.size == 0:
                continue
            raw.sort()
            first = np.concatenate(([True], raw[1:] != raw[:-1]))
            keys = raw[first]
            boundaries = np.flatnonzero(first)
            multiplicities = np.diff(
                np.concatenate((boundaries, [raw.size]))
            )
            if accepted:
                if seen is None:
                    # The bitmap accelerator inside the key set honours the
                    # memory budget; its sorted-array fallback answers the
                    # same membership queries, so results are unaffected.
                    seen = DynamicKeySet(
                        np.sort(np.concatenate(accepted)),
                        budget_bytes=seen_budget,
                    )
                fresh_mask = ~seen.contains(keys)
                fresh = keys[fresh_mask]
                fresh_weights = multiplicities[fresh_mask]
            else:
                fresh = keys
                fresh_weights = multiplicities
            if fresh.size > remaining:
                scores = -np.log(generator.random(fresh.size)) / fresh_weights
                fresh = fresh[np.argpartition(scores, remaining - 1)[:remaining]]
            if fresh.size == 0:
                continue
            if seen is not None:
                seen.add(np.sort(fresh))
            accepted.append(fresh)
            count += fresh.size
        if not accepted:
            # int64: canonical edge-key array (u * n + v packing width).
            return np.empty(0, dtype=np.int64)
        return np.concatenate(accepted) if len(accepted) > 1 else accepted[0]

    def _sample_plain(self, n: int, pi: np.ndarray, target_edges: int,
                      generator: np.random.Generator,
                      acceptance: Optional[EdgeAcceptance]) -> np.ndarray:
        """Classical FCL: draw exactly ``target_edges`` pairs, discard collisions.

        Returns the unique canonical edge keys.  Under a memory budget the
        pairs are drawn in byte-bounded shards; a single full-size shard
        (the unbudgeted case) consumes the RNG exactly as the one-pass
        implementation did, and shard-wise pairing of a sorted endpoint
        block against an independently shuffled one remains a uniform
        random matching, so sharding preserves the sampling distribution.
        """
        sampler = WeightedSampler(pi)
        shard_cap = self._memory_budget.shard_rows(
            _SAMPLE_ROW_BYTES, minimum=2048, cap=target_edges
        )
        chunks = []
        drawn = 0
        while drawn < target_edges:
            shard = min(shard_cap, target_edges - drawn)
            us = sampler.sample_many(shard, generator, shuffle=False)
            vs = sampler.sample_many(shard, generator)
            lo = np.minimum(us, vs)
            hi = np.maximum(us, vs)
            valid = lo != hi
            if acceptance is not None:
                coins = generator.random(shard)
                valid &= coins <= acceptance.pair_probabilities(us, vs)
            chunks.append(lo[valid] * n + hi[valid])
            drawn += shard
        raw = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
        return self._dedupe_sorted(raw)

    # ------------------------------------------------------------------
    # Reference sampling loops (pre-vectorization seed implementation)
    # ------------------------------------------------------------------
    # Kept verbatim as the baseline that ``scripts/bench_perf.py`` measures
    # speedups against; selected with ``vectorized=False``.

    def _generate_corrected_reference(self, graph: AttributedGraph,
                                      pi: np.ndarray, target_edges: int,
                                      max_attempts: int,
                                      generator: np.random.Generator,
                                      acceptance: Optional[EdgeAcceptance]
                                      ) -> None:
        """Per-edge cFCL loop (reference)."""
        n = graph.num_nodes
        attempts = 0
        batch = max(1024, target_edges)
        while graph.num_edges < target_edges and attempts < max_attempts:
            us = generator.choice(n, size=batch, p=pi)
            vs = generator.choice(n, size=batch, p=pi)
            for u, v in zip(us, vs):
                attempts += 1
                if graph.num_edges >= target_edges or attempts >= max_attempts:
                    break
                u, v = int(u), int(v)
                if u == v or graph.has_edge(u, v):
                    continue
                if acceptance is not None and not acceptance.accepts(u, v, generator):
                    continue
                graph.add_edge(u, v)

    def _generate_plain_reference(self, graph: AttributedGraph, pi: np.ndarray,
                                  target_edges: int,
                                  generator: np.random.Generator,
                                  acceptance: Optional[EdgeAcceptance]) -> None:
        """Per-edge FCL loop (reference)."""
        n = graph.num_nodes
        us = generator.choice(n, size=target_edges, p=pi)
        vs = generator.choice(n, size=target_edges, p=pi)
        for u, v in zip(us, vs):
            u, v = int(u), int(v)
            if u == v or graph.has_edge(u, v):
                continue
            if acceptance is not None and not acceptance.accepts(u, v, generator):
                continue
            graph.add_edge(u, v)
