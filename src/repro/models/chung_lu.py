"""The Chung-Lu random graph model and its fast implementation (FCL / cFCL).

In the Chung-Lu (CL) model every node is assigned a desired degree and edges
are sampled with probability proportional to the product of the endpoint
degrees, which reproduces the expected degree sequence.  The fast variant
(FCL, Pinar et al.) samples endpoints from the π distribution — node ``i``
with probability ``d_i / 2m`` — and inserts the resulting edge; repeated
edges and self-loops are discarded and resampled, and the bias-corrected
variant (cFCL) compensates for the resulting under-representation of
low-degree nodes by continuing to sample until the target number of distinct
edges is reached while tracking residual degree demand.

This is both a figure baseline (Figures 2 and 3) and the seed-graph
generator used inside TriCycLe and TCL.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.attributed import AttributedGraph
from repro.models.base import EdgeAcceptance, StructuralModel
from repro.utils.rng import RngLike, ensure_rng


def build_pi_distribution(degrees: np.ndarray,
                          exclude_degree_one: bool = False) -> np.ndarray:
    """Build the π node-sampling distribution from a desired degree sequence.

    ``π(i) ∝ d_i``.  When ``exclude_degree_one`` is set (the TriCycLe orphan
    extension), nodes with desired degree exactly one receive zero weight —
    they are wired up later by the post-processing step instead.  If every
    node would be excluded, the plain degree-proportional distribution is
    returned so generation can still proceed.
    """
    weights = np.asarray(degrees, dtype=float).copy()
    if weights.ndim != 1:
        raise ValueError(f"degrees must be one-dimensional, got shape {weights.shape}")
    weights = np.clip(weights, 0.0, None)
    if exclude_degree_one:
        adjusted = np.where(np.asarray(degrees) == 1, 0.0, weights)
        if adjusted.sum() > 0:
            weights = adjusted
    total = weights.sum()
    if total <= 0:
        # Degenerate case: no positive degrees.  Fall back to uniform so the
        # samplers stay well-defined; they will generate zero or few edges.
        return np.full(weights.shape, 1.0 / max(1, weights.size))
    return weights / total


class ChungLuModel(StructuralModel):
    """Fast Chung-Lu generator with optional bias correction.

    Parameters
    ----------
    degrees:
        Desired degree sequence (one entry per node of the generated graph).
    bias_correction:
        When true (default, the "cFCL" variant), sampling continues until the
        target number of *distinct* edges has been inserted; when false, the
        classical FCL behaviour of drawing exactly ``m`` endpoint pairs and
        discarding collisions is used, which under-generates edges on skewed
        degree sequences.
    max_attempt_factor:
        Safety bound: at most ``max_attempt_factor * m`` endpoint pairs are
        drawn, so pathological acceptance probabilities cannot hang the
        generator.
    """

    def __init__(self, degrees: np.ndarray, bias_correction: bool = True,
                 exclude_degree_one: bool = False,
                 max_attempt_factor: int = 50) -> None:
        self._degrees = np.asarray(degrees, dtype=np.int64)
        if self._degrees.ndim != 1:
            raise ValueError("degrees must be one-dimensional")
        if np.any(self._degrees < 0):
            raise ValueError("degrees must be non-negative")
        if max_attempt_factor < 1:
            raise ValueError("max_attempt_factor must be >= 1")
        self._bias_correction = bool(bias_correction)
        self._exclude_degree_one = bool(exclude_degree_one)
        self._max_attempt_factor = int(max_attempt_factor)

    @property
    def degrees(self) -> np.ndarray:
        """The desired degree sequence."""
        return self._degrees

    @property
    def target_num_edges(self) -> int:
        """Target number of edges, ``m = sum(d_i) / 2``."""
        return int(self._degrees.sum() // 2)

    def effective_target_edges(self) -> int:
        """Target edge count after the degree-one exclusion, ``m - |N_1|``.

        The TriCycLe orphan extension generates ``m - |N_1|`` seed edges and
        wires the degree-one nodes up in post-processing (Section 3.3).
        """
        target = self.target_num_edges
        if self._exclude_degree_one:
            degree_one = int(np.count_nonzero(self._degrees == 1))
            target = max(0, target - degree_one)
        return target

    def pi_distribution(self) -> np.ndarray:
        """The π endpoint-sampling distribution for this degree sequence."""
        return build_pi_distribution(
            self._degrees, exclude_degree_one=self._exclude_degree_one
        )

    def generate(self, num_nodes: Optional[int] = None, rng: RngLike = None,
                 acceptance: Optional[EdgeAcceptance] = None) -> AttributedGraph:
        """Generate a Chung-Lu graph.

        Parameters
        ----------
        num_nodes:
            Number of nodes; defaults to the length of the degree sequence
            and must match it when provided.
        rng:
            Seed or generator.
        acceptance:
            Optional attribute-dependent acceptance probabilities (AGM).

        Returns
        -------
        AttributedGraph
            A simple graph with approximately the desired degree sequence and
            no attributes set.
        """
        n = self._degrees.size if num_nodes is None else int(num_nodes)
        if n != self._degrees.size:
            raise ValueError(
                f"num_nodes ({n}) must match the degree sequence length "
                f"({self._degrees.size})"
            )
        generator = ensure_rng(rng)
        num_attributes = acceptance.num_attributes if acceptance is not None else 0
        graph = AttributedGraph(n, num_attributes)
        target_edges = self.effective_target_edges()
        if n < 2 or target_edges == 0:
            return graph

        pi = self.pi_distribution()
        max_attempts = self._max_attempt_factor * max(target_edges, 1)

        if self._bias_correction:
            self._generate_corrected(
                graph, pi, target_edges, max_attempts, generator, acceptance
            )
        else:
            self._generate_plain(
                graph, pi, target_edges, generator, acceptance
            )
        return graph

    # ------------------------------------------------------------------
    # Internal sampling strategies
    # ------------------------------------------------------------------
    def _generate_corrected(self, graph: AttributedGraph, pi: np.ndarray,
                            target_edges: int, max_attempts: int,
                            generator: np.random.Generator,
                            acceptance: Optional[EdgeAcceptance]) -> None:
        """cFCL: keep sampling until ``target_edges`` distinct edges exist."""
        n = graph.num_nodes
        attempts = 0
        batch = max(1024, target_edges)
        while graph.num_edges < target_edges and attempts < max_attempts:
            us = generator.choice(n, size=batch, p=pi)
            vs = generator.choice(n, size=batch, p=pi)
            for u, v in zip(us, vs):
                attempts += 1
                if graph.num_edges >= target_edges or attempts >= max_attempts:
                    break
                u, v = int(u), int(v)
                if u == v or graph.has_edge(u, v):
                    continue
                if acceptance is not None and not acceptance.accepts(u, v, generator):
                    continue
                graph.add_edge(u, v)

    def _generate_plain(self, graph: AttributedGraph, pi: np.ndarray,
                        target_edges: int, generator: np.random.Generator,
                        acceptance: Optional[EdgeAcceptance]) -> None:
        """Classical FCL: draw exactly ``target_edges`` pairs, discard collisions."""
        n = graph.num_nodes
        us = generator.choice(n, size=target_edges, p=pi)
        vs = generator.choice(n, size=target_edges, p=pi)
        for u, v in zip(us, vs):
            u, v = int(u), int(v)
            if u == v or graph.has_edge(u, v):
                continue
            if acceptance is not None and not acceptance.accepts(u, v, generator):
                continue
            graph.add_edge(u, v)
