"""The Transitive Chung-Lu (TCL) model of Pfeiffer et al.

TCL is the structural baseline the paper compares TriCycLe against
(Section 3.3, Figures 2 and 3).  It extends Chung-Lu with a transitive
closure probability ρ: when refining the seed graph, with probability ρ a
new edge connects a node to a random two-hop neighbour (creating a
triangle), otherwise both endpoints are drawn from the π distribution.  After
every insertion, the oldest seed edge is retired so the expected degree
sequence is preserved; refinement stops when every seed edge has been
replaced.

ρ is learned from the input graph by expectation-maximisation over the
latent "was this edge formed transitively?" indicator — the very step whose
privacy cost the paper cannot bound, which is why TriCycLe replaces ρ with a
triangle count.  TCL is therefore only offered as a *non-private* baseline.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Deque, Optional, Tuple

import numpy as np

from repro.graphs.attributed import AttributedGraph
from repro.models.base import EdgeAcceptance, StructuralModel
from repro.models.chung_lu import ChungLuModel, build_pi_distribution
from repro.models.postprocess import post_process_graph
from repro.models.rewiring import _SortedAdjacency
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.sampling import PresampledStream, WeightedSampler
from repro.utils.validation import check_fraction

Edge = Tuple[int, int]


def estimate_transitive_closure_probability(graph: AttributedGraph,
                                            num_iterations: int = 20,
                                            initial_rho: float = 0.5) -> float:
    """Estimate the TCL transitive-closure probability ρ via EM.

    For every edge ``{i, j}`` we compute the likelihood of it having been
    produced by the transitive proposal (walk to a random neighbour ``k`` of
    ``i``, then to a random neighbour of ``k``) versus the Chung-Lu proposal
    (both endpoints from π).  The E-step computes per-edge responsibilities,
    the M-step sets ρ to their mean.  Degenerate graphs (no edges) return the
    initial value.
    """
    if num_iterations < 1:
        raise ValueError("num_iterations must be >= 1")
    rho = check_fraction(initial_rho, "initial_rho", inclusive=False)

    m = graph.num_edges
    if m == 0:
        return rho
    degrees = graph.degrees().astype(float)
    two_m = degrees.sum()
    if two_m <= 0:
        return rho

    edges = graph.edge_list()
    transitive_likelihood = np.zeros(len(edges))
    chung_lu_likelihood = np.zeros(len(edges))
    for index, (u, v) in enumerate(edges):
        common = graph.common_neighbors(u, v)
        # P(transitive proposal lands on {u, v}) — start at u (prob d_u/2m),
        # walk through a common neighbour k (1/d_u), then to v (1/d_k);
        # plus the symmetric path starting at v.
        p_trans = 0.0
        for k in common:
            dk = degrees[k]
            if dk <= 0:
                continue
            p_trans += (degrees[u] / two_m) * (1.0 / max(degrees[u], 1.0)) * (1.0 / dk)
            p_trans += (degrees[v] / two_m) * (1.0 / max(degrees[v], 1.0)) * (1.0 / dk)
        transitive_likelihood[index] = p_trans
        chung_lu_likelihood[index] = 2.0 * (degrees[u] / two_m) * (degrees[v] / two_m)

    for _ in range(num_iterations):
        numerator = rho * transitive_likelihood
        denominator = numerator + (1.0 - rho) * chung_lu_likelihood
        with np.errstate(divide="ignore", invalid="ignore"):
            responsibilities = np.where(denominator > 0, numerator / denominator, 0.0)
        new_rho = float(responsibilities.mean())
        new_rho = min(max(new_rho, 1e-6), 1.0 - 1e-6)
        if abs(new_rho - rho) < 1e-9:
            rho = new_rho
            break
        rho = new_rho
    return rho


class TclModel(StructuralModel):
    """The Transitive Chung-Lu generator.

    Parameters
    ----------
    degrees:
        Desired degree sequence.
    rho:
        Transitive closure probability in ``(0, 1)``; learn it from an input
        graph with :func:`estimate_transitive_closure_probability`.
    handle_orphans:
        Apply the same orphan-repair extension as TriCycLe.
    postprocess_vectorized:
        Run the orphan repair through the vectorized engine (default); the
        scalar reference repair is selected with ``False``.
    """

    def __init__(self, degrees: np.ndarray, rho: float,
                 handle_orphans: bool = True,
                 postprocess_vectorized: bool = True) -> None:
        self._degrees = np.asarray(degrees, dtype=np.int64)
        if self._degrees.ndim != 1:
            raise ValueError("degrees must be one-dimensional")
        if np.any(self._degrees < 0):
            raise ValueError("degrees must be non-negative")
        self._rho = check_fraction(rho, "rho", inclusive=False)
        self._handle_orphans = bool(handle_orphans)
        self._postprocess_vectorized = bool(postprocess_vectorized)

    @property
    def degrees(self) -> np.ndarray:
        """The desired degree sequence."""
        return self._degrees

    @property
    def rho(self) -> float:
        """The transitive closure probability."""
        return self._rho

    @property
    def target_num_edges(self) -> int:
        """Target number of edges ``m = sum(d_i) / 2``."""
        return int(self._degrees.sum() // 2)

    def generate(self, num_nodes: Optional[int] = None, rng: RngLike = None,
                 acceptance: Optional[EdgeAcceptance] = None) -> AttributedGraph:
        """Generate a TCL graph: Chung-Lu seed followed by ρ-controlled rewiring."""
        n = self._degrees.size if num_nodes is None else int(num_nodes)
        if n != self._degrees.size:
            raise ValueError(
                f"num_nodes ({n}) must match the degree sequence length "
                f"({self._degrees.size})"
            )
        generator = ensure_rng(rng)

        seed_model = ChungLuModel(
            self._degrees,
            bias_correction=True,
            exclude_degree_one=self._handle_orphans,
        )
        graph = seed_model.generate(rng=generator, acceptance=acceptance)
        pi = build_pi_distribution(
            self._degrees, exclude_degree_one=self._handle_orphans
        )

        seed_edges: Deque[Edge] = deque(graph.edges())
        replacements_remaining = len(seed_edges)
        max_attempts = 30 * max(1, replacements_remaining)
        attempts = 0
        # π draws come from a cursor-backed presampled block (the sampler's
        # searchsorted path is stream-identical to scalar draws), so the
        # proposal loop pays one vectorized refill per block instead of a
        # Python-level binary search per endpoint.
        stream = PresampledStream(WeightedSampler(pi), generator)
        # Sorted adjacency rows shared with TriCycLe: O(1) uniform neighbour
        # picks by index arithmetic instead of a per-proposal set scan.
        graph.materialize_neighbor_sets()
        adjacency = _SortedAdjacency(graph)

        while replacements_remaining > 0 and attempts < max_attempts \
                and graph.num_edges > 0:
            attempts += 1
            proposal = self._propose_edge(adjacency, stream, generator)
            if proposal is None:
                continue
            vi, vj = proposal
            if vi == vj or graph.has_edge(vi, vj):
                continue
            if acceptance is not None and not acceptance.accepts(vi, vj, generator):
                continue

            oldest = self._pop_oldest_existing_edge(graph, seed_edges)
            if oldest is None:
                break
            graph.remove_edge(*oldest)
            adjacency.remove(*oldest)
            graph.add_edge(vi, vj)
            adjacency.add(vi, vj)
            replacements_remaining -= 1

        if self._handle_orphans:
            graph = post_process_graph(
                graph, self._degrees, pi, rng=generator, acceptance=acceptance,
                vectorized=self._postprocess_vectorized,
            )
        return graph

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _propose_edge(self, adjacency: _SortedAdjacency,
                      stream: PresampledStream,
                      generator: np.random.Generator) -> Optional[Edge]:
        """Propose an edge: transitive with probability ρ, Chung-Lu otherwise.

        The transitive walk picks uniformly from the sorted adjacency rows
        with index arithmetic: one ``integers`` draw per hop over exactly
        the same candidate sets as the original filtered-list scan (the
        graph is simple, so Γ(vi) never contains vi; Γ(vk) \\ {vi} is
        handled by skipping vi's row position).
        """
        vi = stream.next()
        if generator.random() < self._rho:
            row = adjacency.lists[vi]
            if not row:
                return None
            vk = row[int(generator.integers(len(row)))]
            row_k = adjacency.lists[vk]
            size = len(row_k)
            position = bisect_left(row_k, vi)
            present = position < size and row_k[position] == vi
            choices = size - 1 if present else size
            if choices <= 0:
                return None
            index = int(generator.integers(choices))
            if present and index >= position:
                index += 1
            vj = row_k[index]
        else:
            vj = stream.next()
        if vj == vi:
            return None
        return (vi, vj)

    @staticmethod
    def _pop_oldest_existing_edge(graph: AttributedGraph,
                                  seed_edges: Deque[Edge]) -> Optional[Edge]:
        """Pop the oldest seed edge that still exists in the graph."""
        while seed_edges:
            u, v = seed_edges.popleft()
            if graph.has_edge(u, v):
                return (u, v)
        return None
