"""Uniform-edge baselines.

Section 5.2 calibrates the degree-statistic error rates against "the baseline
model that assigns edges to nodes uniformly at random": a graph with the same
number of nodes and edges as the input but no degree structure at all.
:class:`UniformEdgeModel` implements exactly that (a G(n, m) graph) and
:class:`ErdosRenyiModel` provides the G(n, p) variant for completeness.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.attributed import AttributedGraph
from repro.models.base import EdgeAcceptance, StructuralModel
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_fraction, check_positive_int


class UniformEdgeModel(StructuralModel):
    """G(n, m): exactly ``num_edges`` edges placed uniformly at random."""

    def __init__(self, num_edges: int, max_attempt_factor: int = 50) -> None:
        self._num_edges = check_positive_int(num_edges, "num_edges", minimum=0)
        self._max_attempt_factor = check_positive_int(
            max_attempt_factor, "max_attempt_factor"
        )

    @property
    def target_num_edges(self) -> int:
        """The requested edge count ``m``."""
        return self._num_edges

    def generate(self, num_nodes: int, rng: RngLike = None,
                 acceptance: Optional[EdgeAcceptance] = None) -> AttributedGraph:
        """Generate a uniform random graph with ``num_nodes`` nodes."""
        n = check_positive_int(num_nodes, "num_nodes")
        generator = ensure_rng(rng)
        num_attributes = acceptance.num_attributes if acceptance is not None else 0
        graph = AttributedGraph(n, num_attributes)
        if n < 2:
            return graph
        max_possible = n * (n - 1) // 2
        target = min(self._num_edges, max_possible)
        attempts = 0
        max_attempts = self._max_attempt_factor * max(target, 1)
        while graph.num_edges < target and attempts < max_attempts:
            attempts += 1
            u = int(generator.integers(n))
            v = int(generator.integers(n))
            if u == v or graph.has_edge(u, v):
                continue
            if acceptance is not None and not acceptance.accepts(u, v, generator):
                continue
            graph.add_edge(u, v)
        return graph


class ErdosRenyiModel(StructuralModel):
    """G(n, p): every edge present independently with probability ``p``."""

    def __init__(self, edge_probability: float) -> None:
        self._p = check_fraction(edge_probability, "edge_probability")

    @property
    def edge_probability(self) -> float:
        """The independent edge probability ``p``."""
        return self._p

    @property
    def target_num_edges(self) -> int:
        """Expected edge count is not fixed; returns 0 by convention."""
        return 0

    def generate(self, num_nodes: int, rng: RngLike = None,
                 acceptance: Optional[EdgeAcceptance] = None) -> AttributedGraph:
        """Generate a G(n, p) graph with ``num_nodes`` nodes."""
        n = check_positive_int(num_nodes, "num_nodes")
        generator = ensure_rng(rng)
        num_attributes = acceptance.num_attributes if acceptance is not None else 0
        graph = AttributedGraph(n, num_attributes)
        if n < 2 or self._p == 0.0:
            return graph
        for u in range(n):
            if self._p == 1.0:
                partners = np.arange(u + 1, n)
            else:
                draws = generator.random(n - u - 1)
                partners = np.nonzero(draws < self._p)[0] + u + 1
            for v in partners:
                v = int(v)
                if acceptance is not None and not acceptance.accepts(u, v, generator):
                    continue
                graph.add_edge(u, v)
        return graph
