"""Generative structural models.

AGM needs an underlying structural model ``M`` that proposes edges; this
package provides every model the paper uses or compares against:

* :mod:`repro.models.chung_lu` — the Chung-Lu model and its fast (FCL)
  implementation with collision-aware bias correction (cFCL);
* :mod:`repro.models.tcl` — the Transitive Chung-Lu baseline, including EM
  estimation of the transitive-closure probability ρ;
* :mod:`repro.models.tricycle` — the paper's new TriCycLe model
  (Algorithm 1), which rewires a Chung-Lu seed graph until it contains a
  target number of triangles;
* :mod:`repro.models.postprocess` — the orphan-repair post-processing step
  (Algorithm 2);
* :mod:`repro.models.erdos_renyi` — uniform-edge baselines used to calibrate
  error rates in Section 5.2.
"""

from repro.models.base import EdgeAcceptance, StructuralModel
from repro.models.chung_lu import ChungLuModel, build_pi_distribution
from repro.models.erdos_renyi import ErdosRenyiModel, UniformEdgeModel
from repro.models.postprocess import post_process_graph
from repro.models.tcl import TclModel, estimate_transitive_closure_probability
from repro.models.tricycle import TriCycLeModel

__all__ = [
    "StructuralModel",
    "EdgeAcceptance",
    "ChungLuModel",
    "build_pi_distribution",
    "TclModel",
    "estimate_transitive_closure_probability",
    "TriCycLeModel",
    "post_process_graph",
    "ErdosRenyiModel",
    "UniformEdgeModel",
]
