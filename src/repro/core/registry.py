"""Registry of pluggable structural backends.

The paper evaluates two structural models — TriCycLe (AGMDP-TriCL) and the
fast Chung-Lu model (AGMDP-FCL) — and earlier revisions of this code base
dispatched between them with hardcoded ``"tricycle"`` / ``"fcl"`` string
comparisons spread across the synthesis workflow.  This module replaces
those branches with a declarative registry: a structural backend announces

* its registry ``name`` and the paper-style ``label`` suffix used in result
  tables (``TriCL``, ``FCL``);
* the type of its fitted parameter object;
* the named privacy-budget stages its DP fitter consumes
  (``("degrees", "triangles")`` for TriCycLe, ``("degrees",)`` for FCL);
* the paper's default global budget split for the backend (the keyword
  arguments of :class:`repro.core.agm_dp.BudgetSplit`);
* how to fit its parameters exactly and under ε-DP, and how to build a
  generative :class:`~repro.models.base.StructuralModel` from them.

New backends register themselves with the :func:`register_backend`
decorator and are immediately usable everywhere a backend name is accepted
— ``learn_agm``, ``learn_agm_dp``, :class:`~repro.core.pipeline.SynthesisPipeline`,
the experiment runner and the CLI — without touching core code:

>>> @register_backend
... class ErdosRenyiBackend(StructuralBackend):
...     name = "er"
...     label = "ER"
...     ...

The built-in backends live in :mod:`repro.core.backends`, which is imported
lazily on first registry access so plain ``import repro.core.registry``
stays cycle-free.
"""

from __future__ import annotations

import abc
from typing import Dict, Mapping, Tuple, Type, TypeVar

from repro.graphs.attributed import AttributedGraph
from repro.models.base import StructuralModel
from repro.privacy.accountant import EpsilonLike
from repro.utils.rng import RngLike


class StructuralBackend(abc.ABC):
    """One pluggable structural model: fitting, DP fitting, generation.

    Subclasses define the class attributes below and implement the three
    abstract methods; registering the class makes the backend available
    throughout the synthesis workflow under :attr:`name`.
    """

    #: Registry key (``"tricycle"``, ``"fcl"``, ...).
    name: str = ""
    #: Paper-style model suffix used in table labels (``"TriCL"``, ``"FCL"``).
    label: str = ""
    #: Type of the fitted parameter object (used for validation).
    parameter_type: type = object
    #: Named sub-stages the DP fitter divides its budget among, in spend order.
    budget_stages: Tuple[str, ...] = ()
    #: Keyword arguments of the paper's default ``BudgetSplit`` for this backend.
    default_split: Mapping[str, float] = {}

    @abc.abstractmethod
    def fit(self, graph: AttributedGraph):
        """Measure the backend's structural parameters Θ_M exactly."""

    @abc.abstractmethod
    def fit_dp(self, graph: AttributedGraph, epsilon: EpsilonLike,
               rng: RngLike = None, **options):
        """ε-DP estimate of Θ_M.

        ``epsilon`` is either a plain float (the caller handles composition)
        or a :class:`~repro.privacy.accountant.SubBudget`, in which case the
        fitter splits it across :attr:`budget_stages` and every spend lands
        in the owning accountant's ledger.  Backend-specific knobs (e.g.
        TriCycLe's ``degree_fraction``) arrive as keyword options; fitters
        must ignore options they do not understand.
        """

    @abc.abstractmethod
    def build_model(self, parameters, handle_orphans: bool = True,
                    **options) -> StructuralModel:
        """Instantiate a generative model from fitted parameters.

        Backend-specific generation knobs (e.g. TriCycLe's
        ``batch_proposals`` / ``max_iteration_factor``) arrive as keyword
        options; builders must ignore options they do not understand.
        """

    def validate_parameters(self, parameters) -> None:
        """Raise ``TypeError`` when ``parameters`` do not fit this backend."""
        if not isinstance(parameters, self.parameter_type):
            raise TypeError(
                f"the {self.name!r} backend requires "
                f"{self.parameter_type.__name__} "
                f"(got {type(parameters).__name__})"
            )


_BACKENDS: Dict[str, StructuralBackend] = {}

_B = TypeVar("_B", bound=Type[StructuralBackend])


def register_backend(cls: _B) -> _B:
    """Class decorator: instantiate and register a :class:`StructuralBackend`.

    The class must define a non-empty :attr:`StructuralBackend.name`;
    registering a second backend under an existing name raises — plugins
    must pick fresh names rather than silently shadowing built-ins.
    """
    if not issubclass(cls, StructuralBackend):
        raise TypeError(
            f"@register_backend expects a StructuralBackend subclass, got {cls!r}"
        )
    backend = cls()
    if not backend.name:
        raise ValueError(f"{cls.__name__} must define a non-empty 'name'")
    if backend.name in _BACKENDS:
        raise ValueError(f"backend {backend.name!r} is already registered")
    _BACKENDS[backend.name] = backend
    return cls


def _ensure_builtin_backends() -> None:
    """Import the built-in backend registrations exactly once."""
    if "tricycle" not in _BACKENDS:
        from repro.core import backends  # noqa: F401  (import-time registration)


def get_backend(name: str) -> StructuralBackend:
    """Look up a registered backend; raises ``ValueError`` for unknown names."""
    _ensure_builtin_backends()
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"backend must be one of {backend_names()}, got {name!r}"
        ) from None


def backend_names() -> Tuple[str, ...]:
    """Names of all registered backends, in registration order."""
    _ensure_builtin_backends()
    return tuple(_BACKENDS)


def unregister_backend(name: str) -> None:
    """Remove a registered backend (intended for tests of the plugin API)."""
    _ensure_builtin_backends()
    if name not in _BACKENDS:
        raise ValueError(f"backend {name!r} is not registered")
    del _BACKENDS[name]
