"""Built-in structural backends: TriCycLe (AGMDP-TriCL) and FCL (AGMDP-FCL).

Each backend bundles the exact and DP parameter fitters from
:mod:`repro.params.structural` with the generative model that consumes the
parameters, and declares its named budget stages plus the paper's default
global budget split (Section 5.1: TriCycLe splits ε evenly four ways across
Θ_X, Θ_F, the degree sequence and the triangle count; FCL has no triangle
count, so the degree sequence receives the whole structural half).

Importing this module registers both backends; the registry does so lazily
on first access.
"""

from __future__ import annotations

from repro.core.registry import StructuralBackend, register_backend
from repro.graphs.attributed import AttributedGraph
from repro.models.base import StructuralModel
from repro.models.chung_lu import ChungLuModel
from repro.models.tricycle import TriCycLeModel
from repro.params.structural import (
    FclParameters,
    TriCycLeParameters,
    fit_fcl,
    fit_fcl_dp,
    fit_tricycle,
    fit_tricycle_dp,
)
from repro.privacy.accountant import EpsilonLike
from repro.utils.rng import RngLike


@register_backend
class TriCycLeBackend(StructuralBackend):
    """TriCycLe: degree sequence + triangle count, rewiring generator."""

    name = "tricycle"
    label = "TriCL"
    parameter_type = TriCycLeParameters
    budget_stages = ("degrees", "triangles")
    #: ε_X = ε_F = ε_S = ε_∆ = ε/4 (the structural half is split evenly).
    default_split = {
        "attributes": 0.25,
        "correlations": 0.25,
        "structural": 0.5,
        "structural_degree_fraction": 0.5,
    }

    def fit(self, graph: AttributedGraph) -> TriCycLeParameters:
        return fit_tricycle(graph)

    def fit_dp(self, graph: AttributedGraph, epsilon: EpsilonLike,
               rng: RngLike = None, **options) -> TriCycLeParameters:
        degree_fraction = float(options.get("degree_fraction", 0.5))
        return fit_tricycle_dp(
            graph, epsilon, rng=rng, degree_fraction=degree_fraction
        )

    def build_model(self, parameters: TriCycLeParameters,
                    handle_orphans: bool = True, **options) -> StructuralModel:
        self.validate_parameters(parameters)
        model_kwargs = {}
        equivalence = options.get("rewire_equivalence")
        if equivalence is not None:
            # Validation (exact/distributional) lives in the model ctor.
            model_kwargs["equivalence"] = str(equivalence)
        speculation_block = options.get("speculation_block")
        if speculation_block is not None:
            model_kwargs["speculation_block"] = int(speculation_block)
        memory_budget_mb = options.get("memory_budget_mb")
        if memory_budget_mb is not None:
            model_kwargs["memory_budget_mb"] = int(memory_budget_mb)
        return TriCycLeModel(
            degrees=parameters.degrees,
            num_triangles=parameters.num_triangles,
            handle_orphans=handle_orphans,
            max_iteration_factor=int(options.get("max_iteration_factor", 30)),
            batch_proposals=bool(options.get("batch_proposals", True)),
            postprocess_vectorized=bool(
                options.get("postprocess_vectorized", True)
            ),
            **model_kwargs,
        )


@register_backend
class FclBackend(StructuralBackend):
    """Fast Chung-Lu: degree sequence only, batched edge sampling."""

    name = "fcl"
    label = "FCL"
    parameter_type = FclParameters
    budget_stages = ("degrees",)
    #: Half of ε to the degree sequence, a quarter each to Θ_X and Θ_F.
    default_split = {
        "attributes": 0.25,
        "correlations": 0.25,
        "structural": 0.5,
        "structural_degree_fraction": 0.5,
    }

    def fit(self, graph: AttributedGraph) -> FclParameters:
        return fit_fcl(graph)

    def fit_dp(self, graph: AttributedGraph, epsilon: EpsilonLike,
               rng: RngLike = None, **options) -> FclParameters:
        return fit_fcl_dp(graph, epsilon, rng=rng)

    def build_model(self, parameters: FclParameters,
                    handle_orphans: bool = True, **options) -> StructuralModel:
        self.validate_parameters(parameters)
        model_kwargs = {}
        memory_budget_mb = options.get("memory_budget_mb")
        if memory_budget_mb is not None:
            model_kwargs["memory_budget_mb"] = int(memory_budget_mb)
        return ChungLuModel(
            parameters.degrees, bias_correction=True,
            vectorized=bool(options.get("vectorized", True)),
            **model_kwargs,
        )
