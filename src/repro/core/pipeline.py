"""The staged synthesis engine: estimate → fit → generate → postprocess → evaluate.

Algorithm 3 is naturally a pipeline of independently budgeted stages; this
module makes the pipeline an explicit object rather than a call chain:

* every stage is a named, pluggable :class:`PipelineStage` (registered with
  :func:`register_stage`, so projects can insert custom stages — extra
  validation, alternative evaluation — without forking the engine);
* each stage draws randomness from its own generator, spawned from one root
  seed through :func:`repro.utils.rng.spawn_streams`, so inserting a stage
  or changing how much randomness one stage consumes cannot silently shift
  every downstream draw;
* the private stages charge the run's :class:`PrivacyAccountant`, and the
  finished run carries a serializable :class:`RunManifest` recording the
  budget split, the per-stage ε spends, the seed, the stage order and
  per-stage wall-clock timings — everything needed to audit or replay the
  release.

The Monte-Carlo experiment runner (:mod:`repro.experiments.runner`) executes
one pipeline per trial, serially or in parallel worker processes, and the
CLI's ``run`` command drives it from a JSON config file.
"""

from __future__ import annotations

import abc
import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type, Union

from repro.core.agm import AgmParameters, AgmSynthesizer, learn_agm
from repro.core.agm_dp import BudgetSplit, learn_agm_dp
from repro.core.registry import get_backend
from repro.graphs.attributed import AttributedGraph
from repro.graphs.truncation import default_truncation_parameter
from repro.metrics.evaluation import (
    EvaluationReport,
    average_reports,
    evaluate_synthetic_graph,
)
from repro.privacy.accountant import PrivacyAccountant
from repro.testing.faults import fire
from repro.utils.rng import SeedLike, spawn_streams
from repro.utils.validation import check_epsilon

#: The default stage order of the synthesis engine.
DEFAULT_STAGES: Tuple[str, ...] = (
    "estimate", "fit", "generate", "postprocess", "evaluate",
)


# ----------------------------------------------------------------------
# Run manifest
# ----------------------------------------------------------------------
@dataclass
class RunManifest:
    """Serializable record of one pipeline run.

    Captures what a privacy audit or a replay needs: the backend and global
    ε, the budget split and the per-stage ε spends from the accountant's
    ledger, the root seed, the stage order and per-stage timings.
    """

    backend: str
    epsilon: Optional[float]
    private: bool
    num_nodes: int
    num_edges: int
    num_attributes: int
    truncation_k: Optional[int]
    num_iterations: int
    samples: int
    seed: Optional[Union[int, str]]
    stages: List[str] = field(default_factory=list)
    splits: Dict[str, float] = field(default_factory=dict)
    allocations: Dict[str, float] = field(default_factory=dict)
    spends: Dict[str, float] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def total_spent(self) -> float:
        """Total ε spent across all recorded stages."""
        return float(sum(self.spends.values()))

    def to_dict(self) -> Dict[str, object]:
        """Return the manifest as a plain JSON-serializable dictionary."""
        return {
            "backend": self.backend,
            "epsilon": self.epsilon,
            "private": self.private,
            "graph": {
                "num_nodes": self.num_nodes,
                "num_edges": self.num_edges,
                "num_attributes": self.num_attributes,
            },
            "truncation_k": self.truncation_k,
            "num_iterations": self.num_iterations,
            "samples": self.samples,
            "seed": self.seed,
            "stages": list(self.stages),
            "splits": dict(self.splits),
            "allocations": dict(self.allocations),
            "spends": dict(self.spends),
            "total_spent": self.total_spent,
            "timings": dict(self.timings),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_dict` output (round-trip).

        Used by :class:`repro.api.ModelArtifact` to re-materialise the fit
        manifest persisted inside an artifact document.  Unknown extra keys
        are ignored; the nested ``graph`` block is flattened back.
        """
        graph = data.get("graph") or {}
        return cls(
            backend=str(data.get("backend", "")),
            epsilon=data.get("epsilon"),
            private=bool(data.get("private", False)),
            num_nodes=int(graph.get("num_nodes", 0)),
            num_edges=int(graph.get("num_edges", 0)),
            num_attributes=int(graph.get("num_attributes", 0)),
            truncation_k=data.get("truncation_k"),
            num_iterations=int(data.get("num_iterations", 1)),
            samples=int(data.get("samples", 1)),
            seed=data.get("seed"),
            stages=list(data.get("stages", [])),
            splits=dict(data.get("splits", {})),
            allocations=dict(data.get("allocations", {})),
            spends=dict(data.get("spends", {})),
            timings=dict(data.get("timings", {})),
            extra=dict(data.get("extra", {})),
        )

    def to_json(self, indent: int = 2) -> str:
        """Render the manifest as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def save(self, path) -> None:
        """Write the manifest to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")


# ----------------------------------------------------------------------
# Stage protocol and registry
# ----------------------------------------------------------------------
class PipelineContext:
    """Mutable state threaded through the stages of one pipeline run."""

    def __init__(self, pipeline: "SynthesisPipeline", graph: AttributedGraph,
                 manifest: RunManifest) -> None:
        self.pipeline = pipeline
        self.graph = graph
        self.manifest = manifest
        self.streams: Dict[str, object] = {}
        self.truncation_k: Optional[int] = None
        self.budget_split: Optional[BudgetSplit] = None
        self.accountant: Optional[PrivacyAccountant] = None
        self.parameters: Optional[AgmParameters] = None
        self.graphs: List[AttributedGraph] = []
        self.reports: List[EvaluationReport] = []
        self.report: Optional[EvaluationReport] = None
        #: Scratch space for custom stages.
        self.extra: Dict[str, object] = {}

    def stream_for(self, stage: str):
        """The stage's own random generator (spawned from the root seed)."""
        return self.streams[stage]


class PipelineStage(abc.ABC):
    """One named stage of the synthesis engine.

    Stages are stateless: all run state lives in the
    :class:`PipelineContext`, so one stage instance can serve many runs.
    """

    #: Registry key and manifest label of the stage.
    name: str = ""

    @abc.abstractmethod
    def run(self, context: PipelineContext) -> None:
        """Execute the stage, reading and mutating ``context``."""


_STAGES: Dict[str, Type[PipelineStage]] = {}


def register_stage(cls: Type[PipelineStage]) -> Type[PipelineStage]:
    """Class decorator registering a :class:`PipelineStage` under its name.

    Registering a name again *replaces* the previous implementation — that
    is the supported way to swap a default stage for a custom one.
    """
    if not issubclass(cls, PipelineStage):
        raise TypeError(
            f"@register_stage expects a PipelineStage subclass, got {cls!r}"
        )
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty 'name'")
    _STAGES[cls.name] = cls
    return cls


def get_stage(name: str) -> Type[PipelineStage]:
    """Look up a registered stage class by name."""
    try:
        return _STAGES[name]
    except KeyError:
        raise ValueError(
            f"unknown pipeline stage {name!r}; registered: {tuple(_STAGES)}"
        ) from None


def stage_names() -> Tuple[str, ...]:
    """Names of all registered stages."""
    return tuple(_STAGES)


# ----------------------------------------------------------------------
# Default stages
# ----------------------------------------------------------------------
@register_stage
class EstimateStage(PipelineStage):
    """Resolve data-independent estimates and open the privacy account.

    Derives the truncation parameter ``k`` (the ``n^(1/3)`` heuristic unless
    pinned), resolves the budget split for the backend, and creates the
    run's :class:`PrivacyAccountant` for private runs.  Everything here is
    either public (``n``) or configuration, so no budget is spent.
    """

    name = "estimate"

    def run(self, context: PipelineContext) -> None:
        pipeline = context.pipeline
        context.truncation_k = (
            pipeline.truncation_k
            if pipeline.truncation_k is not None
            else default_truncation_parameter(context.graph.num_nodes)
        )
        context.manifest.truncation_k = context.truncation_k
        if pipeline.is_private:
            split = pipeline.budget_split or BudgetSplit.default_for(pipeline.backend)
            context.budget_split = split
            context.accountant = PrivacyAccountant(pipeline.epsilon)
            context.manifest.splits = {
                **split.weights(),
                "structural_degree_fraction": split.structural_degree_fraction,
            }


@register_stage
class FitStage(PipelineStage):
    """Learn the three AGM parameter sets, exactly or under ε-DP."""

    name = "fit"

    def run(self, context: PipelineContext) -> None:
        pipeline = context.pipeline
        if pipeline.parameters is not None:
            # Prefit (exact) parameters injected by the caller — nothing to
            # learn, and no budget is spent.
            context.parameters = pipeline.parameters
        elif pipeline.is_private:
            context.parameters, _ = learn_agm_dp(
                context.graph,
                pipeline.epsilon,
                backend=pipeline.backend,
                truncation_k=context.truncation_k,
                budget_split=context.budget_split,
                rng=context.stream_for(self.name),
                accountant=context.accountant,
            )
        else:
            context.parameters = learn_agm(context.graph, backend=pipeline.backend)


@register_stage
class GenerateStage(PipelineStage):
    """Sample synthetic graphs from the fitted parameters (post-processing)."""

    name = "generate"

    def run(self, context: PipelineContext) -> None:
        pipeline = context.pipeline
        if context.parameters is None:
            raise RuntimeError("the generate stage requires fitted parameters")
        synthesizer = AgmSynthesizer(
            context.parameters,
            num_iterations=pipeline.num_iterations,
            handle_orphans=pipeline.handle_orphans,
            rewire_equivalence=getattr(
                pipeline, "rewire_equivalence", "exact"
            ),
            memory_budget_mb=getattr(pipeline, "memory_budget_mb", None),
        )
        stream = context.stream_for(self.name)
        context.graphs = [
            synthesizer.sample(rng=stream) for _ in range(pipeline.samples)
        ]


@register_stage
class PostprocessStage(PipelineStage):
    """Apply configured post-processing hooks to every sampled graph.

    Post-processing never touches the sensitive input graph, so arbitrary
    hooks are privacy-free (Section 2.3).  The default pipeline has no
    hooks; pass ``postprocessors=(hook, ...)`` to the pipeline to add them.
    """

    name = "postprocess"

    def run(self, context: PipelineContext) -> None:
        hooks = context.pipeline.postprocessors
        if not hooks:
            return
        stream = context.stream_for(self.name)
        for hook in hooks:
            context.graphs = [hook(graph, stream) for graph in context.graphs]


@register_stage
class EvaluateStage(PipelineStage):
    """Score every sample against the input graph (Tables 2-5 metrics)."""

    name = "evaluate"

    def run(self, context: PipelineContext) -> None:
        if not context.pipeline.evaluate:
            return
        from repro.metrics.incremental import (
            accelerator_stats,
            prepare_original_graph,
        )

        # Prime the input side once (idempotent across trials sharing the
        # graph object): every report below then reads the original's
        # triangle census, wedge count and Θ_F probabilities in O(1).
        prepare_original_graph(context.graph)
        context.reports = [
            evaluate_synthetic_graph(context.graph, synthetic)
            for synthetic in context.graphs
        ]
        if context.reports:
            context.report = average_reports(context.reports)
        stats = accelerator_stats(context.graph)
        if stats is not None:
            context.manifest.extra["metrics_accelerator"] = stats


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------
#: Post-processing hook signature: ``(graph, rng) -> graph``.
PostprocessHook = Callable[[AttributedGraph, object], AttributedGraph]


@dataclass
class PipelineResult:
    """Everything a finished pipeline run produced."""

    graphs: List[AttributedGraph]
    parameters: AgmParameters
    manifest: RunManifest
    accountant: Optional[PrivacyAccountant] = None
    reports: List[EvaluationReport] = field(default_factory=list)
    report: Optional[EvaluationReport] = None

    @property
    def graph(self) -> AttributedGraph:
        """The first (often only) sampled graph."""
        return self.graphs[0]


class SynthesisPipeline:
    """The staged AGM(-DP) synthesis engine.

    Parameters
    ----------
    epsilon:
        Global privacy budget ε, or ``None`` for the non-private baseline.
    backend:
        A registered structural backend name.
    truncation_k:
        Truncation parameter for Θ_F (``None``: the ``n^(1/3)`` heuristic).
    budget_split:
        Optional custom :class:`BudgetSplit` for private runs.
    num_iterations:
        Acceptance-refinement rounds used when sampling.
    handle_orphans:
        Forwarded to the structural backend's model builder.
    rewire_equivalence:
        Rewiring equivalence contract forwarded to the structural backend
        (``"exact"`` or ``"distributional"``); backends without a rewiring
        phase ignore it.
    memory_budget_mb:
        Optional generation memory budget in MiB, forwarded to the
        structural backend through the generate stage.  Over-budget stages
        raise :class:`~repro.utils.memory.MemoryBudgetError`
        (``over_memory``).
    samples:
        Number of synthetic graphs the generate stage produces per run.
    evaluate:
        Whether the evaluate stage computes :class:`EvaluationReport`s.
    stages:
        Optional custom stage order — a sequence of registered stage names
        and/or :class:`PipelineStage` instances.  Defaults to
        :data:`DEFAULT_STAGES`.
    postprocessors:
        Post-processing hooks ``(graph, rng) -> graph`` applied to every
        sample by the postprocess stage.
    parameters:
        Optional prefit :class:`AgmParameters`; the fit stage adopts them
        instead of learning.  Only meaningful for non-private runs (the DP
        guarantee requires the fit to happen inside the accounted run), so
        combining this with ``epsilon`` raises.

    Examples
    --------
    >>> pipeline = SynthesisPipeline(epsilon=1.0, backend="tricycle")
    >>> result = pipeline.run(graph, rng=0)           # doctest: +SKIP
    >>> result.manifest.spends                        # doctest: +SKIP
    {'attributes': 0.25, 'correlations': 0.25,
     'structural.degrees': 0.25, 'structural.triangles': 0.25}
    """

    def __init__(self, epsilon: Optional[float] = None,
                 backend: str = "tricycle", *,
                 truncation_k: Optional[int] = None,
                 budget_split: Optional[BudgetSplit] = None,
                 num_iterations: int = 3,
                 handle_orphans: bool = True,
                 rewire_equivalence: str = "exact",
                 memory_budget_mb: Optional[int] = None,
                 samples: int = 1,
                 evaluate: bool = True,
                 stages: Optional[Sequence[Union[str, PipelineStage]]] = None,
                 postprocessors: Sequence[PostprocessHook] = (),
                 parameters: Optional[AgmParameters] = None) -> None:
        self.epsilon = None if epsilon is None else check_epsilon(epsilon)
        get_backend(backend)  # raises ValueError for unregistered names
        self.backend = backend
        if parameters is not None:
            if self.epsilon is not None:
                raise ValueError(
                    "prefit parameters cannot be combined with a privacy "
                    "budget: the DP fit must happen inside the accounted run"
                )
            if parameters.backend != backend:
                raise ValueError(
                    f"prefit parameters are for backend "
                    f"{parameters.backend!r}, pipeline uses {backend!r}"
                )
        self.parameters = parameters
        self.truncation_k = truncation_k
        self.budget_split = budget_split
        if num_iterations < 1:
            raise ValueError(f"num_iterations must be >= 1, got {num_iterations}")
        self.num_iterations = int(num_iterations)
        self.handle_orphans = bool(handle_orphans)
        self.rewire_equivalence = str(rewire_equivalence)
        if memory_budget_mb is not None:
            memory_budget_mb = int(memory_budget_mb)
            if memory_budget_mb < 1:
                raise ValueError(
                    f"memory_budget_mb must be >= 1, got {memory_budget_mb}"
                )
        self.memory_budget_mb = memory_budget_mb
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples}")
        self.samples = int(samples)
        self.evaluate = bool(evaluate)
        self.postprocessors = tuple(postprocessors)
        self._stages = self._resolve_stages(
            DEFAULT_STAGES if stages is None else stages
        )

    @staticmethod
    def _resolve_stages(stages: Sequence[Union[str, PipelineStage]]
                        ) -> Tuple[PipelineStage, ...]:
        resolved: List[PipelineStage] = []
        for stage in stages:
            if isinstance(stage, PipelineStage):
                resolved.append(stage)
            else:
                resolved.append(get_stage(stage)())
        if not resolved:
            raise ValueError("a pipeline needs at least one stage")
        names = [stage.name for stage in resolved]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names in {names}")
        return tuple(resolved)

    @property
    def is_private(self) -> bool:
        """Whether the pipeline runs the DP learners."""
        return self.epsilon is not None

    def stage_order(self) -> Tuple[str, ...]:
        """The names of the configured stages, in execution order."""
        return tuple(stage.name for stage in self._stages)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, graph: AttributedGraph, rng: SeedLike = None,
            checkpoint: Optional[Callable[[], None]] = None) -> PipelineResult:
        """Execute the stages on ``graph`` and return the collected result.

        ``rng`` is the *root* seed: every stage receives its own independent
        generator spawned from it, so a run is reproducible from
        ``(graph, configuration, rng)`` alone and stages cannot perturb each
        other's streams.

        ``checkpoint`` is an optional cooperative-cancellation hook called
        before every stage (and once after the last): a caller enforcing a
        deadline passes a callable that raises when the request's time is up,
        so an abandoned run stops at the next stage boundary instead of
        holding a worker to completion.  Stage boundaries also carry
        ``pipeline.stage.<name>.start`` / ``.end`` fault points for the
        crash-recovery tests.
        """
        manifest = RunManifest(
            backend=self.backend,
            epsilon=self.epsilon,
            private=self.is_private,
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            num_attributes=graph.num_attributes,
            truncation_k=self.truncation_k,
            num_iterations=self.num_iterations,
            samples=self.samples,
            seed=_describe_seed(rng),
            stages=list(self.stage_order()),
        )
        context = PipelineContext(self, graph, manifest)
        streams = spawn_streams(rng, len(self._stages))
        context.streams = {
            stage.name: stream for stage, stream in zip(self._stages, streams)
        }

        for stage in self._stages:
            if checkpoint is not None:
                checkpoint()
            fire(f"pipeline.stage.{stage.name}.start")
            start = time.perf_counter()
            stage.run(context)
            manifest.timings[stage.name] = time.perf_counter() - start
            fire(f"pipeline.stage.{stage.name}.end")
        if checkpoint is not None:
            checkpoint()

        if context.accountant is not None:
            manifest.allocations = context.accountant.allocations()
            manifest.spends = context.accountant.breakdown()
        if context.parameters is None:
            raise RuntimeError(
                "the pipeline finished without fitted parameters; "
                f"stage order {self.stage_order()} is missing a fit stage"
            )
        return PipelineResult(
            graphs=context.graphs,
            parameters=context.parameters,
            manifest=manifest,
            accountant=context.accountant,
            reports=context.reports,
            report=context.report,
        )


def _describe_seed(rng: SeedLike) -> Optional[Union[int, str]]:
    """A manifest-friendly description of the root seed."""
    if rng is None:
        return None
    if isinstance(rng, (int,)):
        return int(rng)
    try:
        import numpy as np

        if isinstance(rng, np.integer):
            return int(rng)
        if isinstance(rng, np.random.SeedSequence):
            entropy = rng.entropy
            return int(entropy) if isinstance(entropy, int) else str(entropy)
    except Exception:  # pragma: no cover - defensive
        pass
    return type(rng).__name__
