"""The Attributed Graph Model (AGM) synthesis loop.

AGM (Pfeiffer et al., WWW 2014) models an attributed graph through three
parameter sets — the node attribute distribution Θ_X, the attribute–edge
correlations Θ_F, and the parameters Θ_M of an underlying structural model —
and samples synthetic graphs by generating structure and filtering proposed
edges through attribute-dependent acceptance probabilities.

This module implements the *non-private* version: :func:`learn_agm` measures
the parameters exactly and :class:`AgmSynthesizer` runs the sampling loop of
Section 4 (acceptance probabilities recomputed over a small number of
iterations, then applied inside the structural model's own sampler so that
models like TriCycLe, which rewire rather than re-sample, are supported).
The differentially private variant in :mod:`repro.core.agm_dp` reuses this
synthesizer with privately learned parameters — after the learning step the
raw input graph is never touched again, so everything here is
post-processing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.attributes.encoding import AttributeEncoder
from repro.core.acceptance import compute_acceptance_probabilities, observed_correlations
from repro.core.registry import get_backend
from repro.graphs.attributed import AttributedGraph
from repro.models.base import EdgeAcceptance, StructuralModel
from repro.params.attribute_distribution import AttributeDistribution, learn_attributes
from repro.params.correlations import CorrelationDistribution, learn_correlations
from repro.params.structural import FclParameters, TriCycLeParameters
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class AgmParameters:
    """The three learned AGM parameter sets plus the chosen structural backend.

    Attributes
    ----------
    attribute_distribution:
        Θ_X — distribution over node attribute configurations.
    correlations:
        Θ_F — distribution over edge attribute configurations.
    structural:
        Θ_M — degree sequence (and triangle count for TriCycLe).
    backend:
        Either ``"tricycle"`` or ``"fcl"``.
    """

    attribute_distribution: AttributeDistribution
    correlations: CorrelationDistribution
    structural: Union[FclParameters, TriCycLeParameters]
    backend: str = "tricycle"

    def __post_init__(self) -> None:
        get_backend(self.backend).validate_parameters(self.structural)
        if (
            self.attribute_distribution.num_attributes
            != self.correlations.num_attributes
        ):
            raise ValueError(
                "attribute_distribution and correlations disagree on the number "
                "of attributes"
            )

    @property
    def num_attributes(self) -> int:
        """The attribute dimension ``w``."""
        return self.attribute_distribution.num_attributes

    @property
    def num_nodes(self) -> int:
        """The number of nodes of graphs sampled from these parameters."""
        return self.structural.num_nodes


def learn_agm(graph: AttributedGraph, backend: str = "tricycle") -> AgmParameters:
    """Measure the AGM parameters exactly (no privacy).

    Parameters
    ----------
    graph:
        The input attributed graph.
    backend:
        Structural backend: ``"tricycle"`` (degree sequence + triangle count)
        or ``"fcl"`` (degree sequence only).
    """
    backend_spec = get_backend(backend)  # raise before any learning work
    return AgmParameters(
        attribute_distribution=learn_attributes(graph),
        correlations=learn_correlations(graph),
        structural=backend_spec.fit(graph),
        backend=backend,
    )


class AgmSynthesizer:
    """Samples synthetic attributed graphs from a set of AGM parameters.

    Parameters
    ----------
    parameters:
        The learned (exactly or privately) AGM parameters.
    num_iterations:
        Number of acceptance-probability refinement rounds (Algorithm 3's
        outer loop).  The paper observes convergence "after just a few
        iterations"; the default of 3 matches that.
    handle_orphans:
        Forwarded to the TriCycLe backend's orphan-repair extension.
    rewire_equivalence:
        Rewiring equivalence contract forwarded to the structural backend:
        ``"exact"`` (bit-identical scalar swap sequence) or
        ``"distributional"`` (speculative block engine, pinned by
        distributional closeness).  Backends without a rewiring phase
        ignore it.
    memory_budget_mb:
        Optional generation memory budget in MiB, forwarded to the
        structural backend.  Models shard their sampling passes to fit and
        raise :class:`~repro.utils.memory.MemoryBudgetError`
        (``over_memory``) when a stage's pessimistic estimate cannot fit.

    Notes
    -----
    Sampling is pure post-processing of the parameters: it never touches the
    original input graph, which is what makes the DP variant's privacy
    argument (Theorem 2) go through.
    """

    def __init__(self, parameters: AgmParameters, num_iterations: int = 3,
                 handle_orphans: bool = True,
                 rewire_equivalence: str = "exact",
                 memory_budget_mb: Optional[int] = None) -> None:
        if num_iterations < 1:
            raise ValueError(f"num_iterations must be >= 1, got {num_iterations}")
        self._parameters = parameters
        self._num_iterations = int(num_iterations)
        self._handle_orphans = bool(handle_orphans)
        self._rewire_equivalence = str(rewire_equivalence)
        self._memory_budget_mb = (
            None if memory_budget_mb is None else int(memory_budget_mb)
        )

    @property
    def parameters(self) -> AgmParameters:
        """The parameters this synthesizer samples from."""
        return self._parameters

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, rng: RngLike = None) -> AttributedGraph:
        """Sample one synthetic attributed graph.

        The procedure follows Algorithm 3, lines 6-18: draw attribute
        vectors from Θ_X, generate a temporary edge set from the structural
        model alone, then iteratively recompute acceptance probabilities and
        regenerate the edge set through the acceptance-aware sampler until
        the configured number of iterations has run.
        """
        generator = ensure_rng(rng)
        params = self._parameters
        n = params.num_nodes
        w = params.num_attributes

        # Line 6: sample attribute vectors X̃ from Θ̃_X.
        attributes = params.attribute_distribution.sample_attribute_matrix(
            n, rng=generator
        )
        encoder = AttributeEncoder(w)
        node_codes = encoder.encode_matrix(attributes) if w else np.zeros(n, dtype=np.int64)

        # Line 7: temporary edge set sampled independently of the attributes.
        graph = self._build_model().generate(num_nodes=n, rng=generator)
        graph = self._with_attributes(graph, attributes)

        # Lines 9-18: refine acceptance probabilities and resample.
        acceptance_vector: Optional[np.ndarray] = None
        for _ in range(self._num_iterations):
            observed = observed_correlations(graph)
            acceptance_vector = compute_acceptance_probabilities(
                params.correlations.probabilities, observed, previous=acceptance_vector
            )
            acceptance = EdgeAcceptance(
                probabilities=acceptance_vector,
                node_codes=node_codes,
                num_attributes=w,
            )
            graph = self._build_model().generate(
                num_nodes=n, rng=generator, acceptance=acceptance
            )
            graph = self._with_attributes(graph, attributes)

        return graph

    def sample_many(self, count: int, rng: RngLike = None):
        """Yield ``count`` independent synthetic graphs."""
        generator = ensure_rng(rng)
        for _ in range(count):
            yield self.sample(rng=generator)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _build_model(self) -> StructuralModel:
        """Instantiate a fresh structural model through the backend registry."""
        params = self._parameters
        return get_backend(params.backend).build_model(
            params.structural, handle_orphans=self._handle_orphans,
            rewire_equivalence=self._rewire_equivalence,
            memory_budget_mb=self._memory_budget_mb,
        )

    @staticmethod
    def _with_attributes(graph: AttributedGraph, attributes: np.ndarray
                         ) -> AttributedGraph:
        """Return ``graph`` with the sampled attribute matrix attached."""
        w = attributes.shape[1] if attributes.ndim == 2 else 0
        if graph.num_attributes == w:
            result = graph
        else:
            result = AttributedGraph.from_graph_structure(graph, w)
        if w:
            result.set_all_attributes(attributes)
        return result
