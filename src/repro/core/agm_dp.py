"""AGM-DP: the end-to-end differentially private workflow (Algorithm 3).

The workflow learns differentially private approximations of the three AGM
parameter sets from a sensitive input graph, then samples synthetic graphs
from those approximations without ever touching the input again.  By
sequential composition and post-processing invariance the whole pipeline is
ε-differentially private with ε = ε_X + ε_F + ε_M (Theorem 2).

Two structural backends are supported, matching the paper's experiments:

* ``"tricycle"`` (AGMDP-TriCL): ε split evenly four ways across Θ_X, Θ_F,
  the degree sequence and the triangle count;
* ``"fcl"`` (AGMDP-FCL): no triangle count needed, so half of the budget
  goes to the degree sequence and the rest is split between Θ_X and Θ_F.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.agm import STRUCTURAL_BACKENDS, AgmParameters, AgmSynthesizer
from repro.graphs.attributed import AttributedGraph
from repro.graphs.truncation import default_truncation_parameter
from repro.params.attribute_distribution import learn_attributes_dp
from repro.params.correlations import learn_correlations_dp
from repro.params.structural import fit_fcl_dp, fit_tricycle_dp
from repro.privacy.budget import PrivacyBudget
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_epsilon


@dataclass(frozen=True)
class BudgetSplit:
    """How the global privacy budget ε is divided among the learned parameters.

    The fractions must be positive and sum to one.  ``structural`` covers the
    whole structural fit: for the TriCycLe backend it is further divided
    between the degree sequence and the triangle count by
    ``structural_degree_fraction``; the FCL backend spends all of it on the
    degree sequence.
    """

    attributes: float
    correlations: float
    structural: float
    structural_degree_fraction: float = 0.5

    def __post_init__(self) -> None:
        parts = (self.attributes, self.correlations, self.structural)
        if any(p <= 0 for p in parts):
            raise ValueError("all budget fractions must be positive")
        total = sum(parts)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"budget fractions must sum to 1, got {total}")
        if not (0.0 < self.structural_degree_fraction < 1.0):
            raise ValueError("structural_degree_fraction must lie in (0, 1)")

    @classmethod
    def even_tricycle(cls) -> "BudgetSplit":
        """The paper's default for AGMDP-TriCL: ε_X = ε_F = ε_S = ε_∆ = ε/4."""
        return cls(attributes=0.25, correlations=0.25, structural=0.5,
                   structural_degree_fraction=0.5)

    @classmethod
    def even_fcl(cls) -> "BudgetSplit":
        """The paper's default for AGMDP-FCL: half to the degree sequence."""
        return cls(attributes=0.25, correlations=0.25, structural=0.5,
                   structural_degree_fraction=0.5)

    @classmethod
    def default_for(cls, backend: str) -> "BudgetSplit":
        """Return the paper's default split for the given backend."""
        if backend == "tricycle":
            return cls.even_tricycle()
        if backend == "fcl":
            return cls.even_fcl()
        raise ValueError(f"unknown backend {backend!r}")


def learn_agm_dp(graph: AttributedGraph, epsilon: float,
                 backend: str = "tricycle",
                 truncation_k: Optional[int] = None,
                 budget_split: Optional[BudgetSplit] = None,
                 rng: RngLike = None) -> Tuple[AgmParameters, PrivacyBudget]:
    """Learn ε-DP approximations of the AGM parameters (Algorithm 3, lines 2-5).

    Parameters
    ----------
    graph:
        The sensitive input graph ``G = (N, E, X)``.
    epsilon:
        The global privacy budget ε.
    backend:
        ``"tricycle"`` or ``"fcl"``.
    truncation_k:
        The truncation parameter ``k`` for the Θ_F estimator; defaults to the
        data-independent heuristic ``n^(1/3)``.
    budget_split:
        How to divide ε among the parameters; defaults to the paper's split
        for the chosen backend.
    rng:
        Seed or generator.

    Returns
    -------
    (parameters, budget):
        The learned parameters and the budget ledger showing how ε was spent.
    """
    epsilon = check_epsilon(epsilon)
    if backend not in STRUCTURAL_BACKENDS:
        raise ValueError(f"backend must be one of {STRUCTURAL_BACKENDS}, got {backend!r}")
    if budget_split is None:
        budget_split = BudgetSplit.default_for(backend)
    if truncation_k is None:
        truncation_k = default_truncation_parameter(graph.num_nodes)
    generator = ensure_rng(rng)

    budget = PrivacyBudget(epsilon)
    epsilon_x = budget.spend(epsilon * budget_split.attributes, "attributes")
    epsilon_f = budget.spend(epsilon * budget_split.correlations, "correlations")
    epsilon_m = budget.spend(epsilon * budget_split.structural, "structural")

    attribute_distribution = learn_attributes_dp(graph, epsilon_x, rng=generator)
    correlations = learn_correlations_dp(
        graph, epsilon_f, truncation_k=truncation_k, rng=generator
    )
    if backend == "tricycle":
        structural = fit_tricycle_dp(
            graph, epsilon_m, rng=generator,
            degree_fraction=budget_split.structural_degree_fraction,
        )
    else:
        structural = fit_fcl_dp(graph, epsilon_m, rng=generator)

    parameters = AgmParameters(
        attribute_distribution=attribute_distribution,
        correlations=correlations,
        structural=structural,
        backend=backend,
    )
    return parameters, budget


class AgmDp:
    """Facade for the complete AGM-DP workflow: fit once, sample many.

    Examples
    --------
    >>> from repro.datasets import lastfm_like
    >>> graph = lastfm_like(seed=0)          # doctest: +SKIP
    >>> model = AgmDp(epsilon=1.0, backend="tricycle", rng=0)
    >>> model.fit(graph)                      # doctest: +SKIP
    >>> synthetic = model.sample()            # doctest: +SKIP

    Parameters
    ----------
    epsilon:
        Global privacy budget ε for the release.
    backend:
        ``"tricycle"`` (the paper's AGMDP-TriCL) or ``"fcl"`` (AGMDP-FCL).
    truncation_k:
        Truncation parameter for Θ_F; defaults to ``n^(1/3)``.
    budget_split:
        Optional custom :class:`BudgetSplit`.
    num_iterations:
        Acceptance-refinement rounds used when sampling.
    rng:
        Seed or generator used for both learning and sampling.
    """

    def __init__(self, epsilon: float, backend: str = "tricycle",
                 truncation_k: Optional[int] = None,
                 budget_split: Optional[BudgetSplit] = None,
                 num_iterations: int = 3,
                 handle_orphans: bool = True,
                 rng: RngLike = None) -> None:
        self._epsilon = check_epsilon(epsilon)
        if backend not in STRUCTURAL_BACKENDS:
            raise ValueError(
                f"backend must be one of {STRUCTURAL_BACKENDS}, got {backend!r}"
            )
        self._backend = backend
        self._truncation_k = truncation_k
        self._budget_split = budget_split
        self._num_iterations = num_iterations
        self._handle_orphans = handle_orphans
        self._rng = ensure_rng(rng)
        self._parameters: Optional[AgmParameters] = None
        self._budget: Optional[PrivacyBudget] = None

    @property
    def epsilon(self) -> float:
        """The global privacy budget."""
        return self._epsilon

    @property
    def backend(self) -> str:
        """The structural backend in use."""
        return self._backend

    @property
    def parameters(self) -> AgmParameters:
        """The learned parameters (raises if :meth:`fit` has not been called)."""
        if self._parameters is None:
            raise RuntimeError("AgmDp.fit() must be called before accessing parameters")
        return self._parameters

    @property
    def budget(self) -> PrivacyBudget:
        """The privacy-budget ledger for the fit."""
        if self._budget is None:
            raise RuntimeError("AgmDp.fit() must be called before accessing the budget")
        return self._budget

    def fit(self, graph: AttributedGraph) -> "AgmDp":
        """Learn the DP parameters from ``graph``; returns ``self`` for chaining."""
        self._parameters, self._budget = learn_agm_dp(
            graph,
            self._epsilon,
            backend=self._backend,
            truncation_k=self._truncation_k,
            budget_split=self._budget_split,
            rng=self._rng,
        )
        return self

    def sample(self, rng: RngLike = None) -> AttributedGraph:
        """Sample one synthetic graph from the fitted parameters."""
        synthesizer = AgmSynthesizer(
            self.parameters,
            num_iterations=self._num_iterations,
            handle_orphans=self._handle_orphans,
        )
        return synthesizer.sample(rng=self._rng if rng is None else rng)

    def sample_many(self, count: int, rng: RngLike = None):
        """Yield ``count`` independent synthetic graphs from the fitted parameters."""
        synthesizer = AgmSynthesizer(
            self.parameters,
            num_iterations=self._num_iterations,
            handle_orphans=self._handle_orphans,
        )
        return synthesizer.sample_many(count, rng=self._rng if rng is None else rng)
