"""AGM-DP: the end-to-end differentially private workflow (Algorithm 3).

The workflow learns differentially private approximations of the three AGM
parameter sets from a sensitive input graph, then samples synthetic graphs
from those approximations without ever touching the input again.  By
sequential composition and post-processing invariance the whole pipeline is
ε-differentially private with ε = ε_X + ε_F + ε_M (Theorem 2).

Two structural backends are supported, matching the paper's experiments:

* ``"tricycle"`` (AGMDP-TriCL): ε split evenly four ways across Θ_X, Θ_F,
  the degree sequence and the triangle count;
* ``"fcl"`` (AGMDP-FCL): no triangle count needed, so half of the budget
  goes to the degree sequence and the rest is split between Θ_X and Θ_F.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.agm import AgmParameters, AgmSynthesizer
from repro.core.registry import get_backend
from repro.graphs.attributed import AttributedGraph
from repro.graphs.truncation import default_truncation_parameter
from repro.params.attribute_distribution import learn_attributes_dp
from repro.params.correlations import learn_correlations_dp
from repro.privacy.accountant import PrivacyAccountant
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_epsilon


@dataclass(frozen=True)
class BudgetSplit:
    """How the global privacy budget ε is divided among the learned parameters.

    The fractions must be positive and sum to one.  ``structural`` covers the
    whole structural fit: for the TriCycLe backend it is further divided
    between the degree sequence and the triangle count by
    ``structural_degree_fraction``; the FCL backend spends all of it on the
    degree sequence.
    """

    attributes: float
    correlations: float
    structural: float
    structural_degree_fraction: float = 0.5

    def __post_init__(self) -> None:
        parts = (self.attributes, self.correlations, self.structural)
        if any(p <= 0 for p in parts):
            raise ValueError("all budget fractions must be positive")
        total = sum(parts)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"budget fractions must sum to 1, got {total}")
        if not (0.0 < self.structural_degree_fraction < 1.0):
            raise ValueError("structural_degree_fraction must lie in (0, 1)")

    @classmethod
    def even_tricycle(cls) -> "BudgetSplit":
        """The paper's default for AGMDP-TriCL: ε_X = ε_F = ε_S = ε_∆ = ε/4."""
        return cls.default_for("tricycle")

    @classmethod
    def even_fcl(cls) -> "BudgetSplit":
        """The paper's default for AGMDP-FCL: half to the degree sequence."""
        return cls.default_for("fcl")

    @classmethod
    def default_for(cls, backend: str) -> "BudgetSplit":
        """The paper's default split for ``backend``, from the registry.

        Registered backends declare their default split
        (:attr:`repro.core.registry.StructuralBackend.default_split`), so a
        plugin backend automatically gets a working default here.
        """
        return cls(**get_backend(backend).default_split)

    def weights(self) -> dict:
        """The top-level stage weights, for :meth:`PrivacyAccountant.split`."""
        return {
            "attributes": self.attributes,
            "correlations": self.correlations,
            "structural": self.structural,
        }


def learn_agm_dp(graph: AttributedGraph, epsilon: float,
                 backend: str = "tricycle",
                 truncation_k: Optional[int] = None,
                 budget_split: Optional[BudgetSplit] = None,
                 rng: RngLike = None,
                 accountant: Optional[PrivacyAccountant] = None,
                 ) -> Tuple[AgmParameters, PrivacyAccountant]:
    """Learn ε-DP approximations of the AGM parameters (Algorithm 3, lines 2-5).

    Parameters
    ----------
    graph:
        The sensitive input graph ``G = (N, E, X)``.
    epsilon:
        The global privacy budget ε.
    backend:
        A registered structural backend name (``"tricycle"``, ``"fcl"``, or a
        plugin registered through :mod:`repro.core.registry`).
    truncation_k:
        The truncation parameter ``k`` for the Θ_F estimator; defaults to the
        data-independent heuristic ``n^(1/3)``.
    budget_split:
        How to divide ε among the parameters; defaults to the paper's split
        for the chosen backend.
    rng:
        Seed or generator.
    accountant:
        Optional externally owned :class:`PrivacyAccountant` (e.g. the
        pipeline's); a fresh one for ``epsilon`` is created when omitted.

    Returns
    -------
    (parameters, accountant):
        The learned parameters and the accountant whose ledger shows how ε
        was spent per stage (``attributes``, ``correlations``,
        ``structural.degrees``, ...).
    """
    epsilon = check_epsilon(epsilon)
    backend_spec = get_backend(backend)
    if budget_split is None:
        budget_split = BudgetSplit.default_for(backend)
    if truncation_k is None:
        truncation_k = default_truncation_parameter(graph.num_nodes)
    generator = ensure_rng(rng)

    if accountant is None:
        accountant = PrivacyAccountant(epsilon)
    elif abs(accountant.uncommitted - epsilon) > 1e-9 * max(epsilon, 1.0):
        # An external accountant must agree with the requested budget —
        # silently spending a different ε than the caller asked for would
        # falsify the composition argument.
        raise ValueError(
            f"epsilon ({epsilon:.6g}) does not match the accountant's "
            f"uncommitted budget ({accountant.uncommitted:.6g})"
        )
    stages = accountant.split(budget_split.weights())

    attribute_distribution = learn_attributes_dp(
        graph, stages["attributes"], rng=generator
    )
    correlations = learn_correlations_dp(
        graph, stages["correlations"], truncation_k=truncation_k, rng=generator
    )
    structural = backend_spec.fit_dp(
        graph, stages["structural"], rng=generator,
        degree_fraction=budget_split.structural_degree_fraction,
    )

    parameters = AgmParameters(
        attribute_distribution=attribute_distribution,
        correlations=correlations,
        structural=structural,
        backend=backend,
    )
    return parameters, accountant


class AgmDp:
    """Facade for the complete AGM-DP workflow: fit once, sample many.

    .. deprecated::
        ``AgmDp`` predates the public API package and is kept as a
        backward-compatibility shim.  New code should describe the release
        with a :class:`repro.api.ReleaseSpec` and drive it through
        :class:`repro.api.ReleaseSession` (``fit(spec) -> ModelArtifact``,
        then ``sample(artifact, n, seed)``), which adds spec validation, a
        persistable artifact and the artifact cache behind the HTTP service.

    Examples
    --------
    >>> from repro.datasets import lastfm_like
    >>> graph = lastfm_like(seed=0)          # doctest: +SKIP
    >>> model = AgmDp(epsilon=1.0, backend="tricycle", rng=0)
    >>> model.fit(graph)                      # doctest: +SKIP
    >>> synthetic = model.sample()            # doctest: +SKIP

    Parameters
    ----------
    epsilon:
        Global privacy budget ε for the release.
    backend:
        ``"tricycle"`` (the paper's AGMDP-TriCL) or ``"fcl"`` (AGMDP-FCL).
    truncation_k:
        Truncation parameter for Θ_F; defaults to ``n^(1/3)``.
    budget_split:
        Optional custom :class:`BudgetSplit`.
    num_iterations:
        Acceptance-refinement rounds used when sampling.
    rng:
        Seed or generator used for both learning and sampling.
    """

    def __init__(self, epsilon: float, backend: str = "tricycle",
                 truncation_k: Optional[int] = None,
                 budget_split: Optional[BudgetSplit] = None,
                 num_iterations: int = 3,
                 handle_orphans: bool = True,
                 rng: RngLike = None) -> None:
        warnings.warn(
            "AgmDp is deprecated; describe the release with "
            "repro.api.ReleaseSpec and drive it through "
            "repro.api.ReleaseSession (fit once, sample many)",
            DeprecationWarning, stacklevel=2,
        )
        self._epsilon = check_epsilon(epsilon)
        get_backend(backend)  # raises ValueError for unregistered names
        self._backend = backend
        self._truncation_k = truncation_k
        self._budget_split = budget_split
        self._num_iterations = num_iterations
        self._handle_orphans = handle_orphans
        self._rng = ensure_rng(rng)
        self._parameters: Optional[AgmParameters] = None
        self._budget: Optional[PrivacyAccountant] = None

    @property
    def epsilon(self) -> float:
        """The global privacy budget."""
        return self._epsilon

    @property
    def backend(self) -> str:
        """The structural backend in use."""
        return self._backend

    @property
    def parameters(self) -> AgmParameters:
        """The learned parameters (raises if :meth:`fit` has not been called)."""
        if self._parameters is None:
            raise RuntimeError("AgmDp.fit() must be called before accessing parameters")
        return self._parameters

    @property
    def budget(self) -> PrivacyAccountant:
        """The privacy accountant holding the per-stage ledger of the fit."""
        if self._budget is None:
            raise RuntimeError("AgmDp.fit() must be called before accessing the budget")
        return self._budget

    def fit(self, graph: AttributedGraph) -> "AgmDp":
        """Learn the DP parameters from ``graph``; returns ``self`` for chaining."""
        self._parameters, self._budget = learn_agm_dp(
            graph,
            self._epsilon,
            backend=self._backend,
            truncation_k=self._truncation_k,
            budget_split=self._budget_split,
            rng=self._rng,
        )
        return self

    def sample(self, rng: RngLike = None) -> AttributedGraph:
        """Sample one synthetic graph from the fitted parameters."""
        synthesizer = AgmSynthesizer(
            self.parameters,
            num_iterations=self._num_iterations,
            handle_orphans=self._handle_orphans,
        )
        return synthesizer.sample(rng=self._rng if rng is None else rng)

    def sample_many(self, count: int, rng: RngLike = None):
        """Yield ``count`` independent synthetic graphs from the fitted parameters."""
        synthesizer = AgmSynthesizer(
            self.parameters,
            num_iterations=self._num_iterations,
            handle_orphans=self._handle_orphans,
        )
        return synthesizer.sample_many(count, rng=self._rng if rng is None else rng)
