"""Acceptance probabilities for attribute-aware edge sampling.

AGM couples an attribute-agnostic structural model with the target
attribute–edge correlation distribution Θ_F through accept/reject sampling
(Section 2.2 and Algorithm 3, lines 9-18): after generating a temporary edge
set, the observed correlations Θ'_F are measured, the ratios
``R(y) = Θ_F(y) / Θ'_F(y)`` (optionally folded into the previous round's
acceptance values) are normalised by their supremum, and the result becomes
the per-configuration probability of accepting a proposed edge in the next
round.  Configurations the target says should be rarer than observed receive
acceptance below one; the most under-represented configuration is always
accepted.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.attributed import AttributedGraph
from repro.params.correlations import connection_probabilities

#: Ratio assigned to configurations never proposed by the structural model.
#: They cannot be over-represented, so they get the maximum acceptance.
_UNOBSERVED_RATIO = np.inf

#: Lower bound on the proposal-weighted acceptance rate.  Because the
#: structural samplers keep proposing edges until the target edge count is
#: reached, the *relative* acceptance values fully determine the attribute
#: composition of the output; a uniform rescaling only affects how many
#: proposals are needed.  Enforcing a floor on the expected acceptance rate
#: therefore keeps generation time bounded without changing the model, except
#: that configurations pushed above one by the rescaling are clipped (those
#: are exactly the most under-represented ones, which the paper's supremum
#: normalisation already pins to one).
_MIN_EXPECTED_ACCEPTANCE = 0.1


def compute_acceptance_probabilities(target: np.ndarray, observed: np.ndarray,
                                     previous: Optional[np.ndarray] = None
                                     ) -> np.ndarray:
    """Compute the acceptance vector ``A`` from target and observed correlations.

    Parameters
    ----------
    target:
        The desired Θ_F probabilities (length = number of edge configurations).
    observed:
        The correlations Θ'_F measured in the current temporary graph.
    previous:
        The acceptance vector from the previous iteration (``A_old`` in
        Algorithm 3); ratios are multiplied into it so successive rounds
        compound their corrections.

    Returns
    -------
    numpy.ndarray
        Acceptance probabilities in ``(0, 1]`` with at least one entry equal
        to one (the supremum normalisation).
    """
    target = np.asarray(target, dtype=float)
    observed = np.asarray(observed, dtype=float)
    if target.shape != observed.shape:
        raise ValueError(
            f"target and observed must have the same shape, got {target.shape} "
            f"vs {observed.shape}"
        )
    if previous is not None:
        previous = np.asarray(previous, dtype=float)
        if previous.shape != target.shape:
            raise ValueError("previous acceptance vector has the wrong shape")

    # Divide only where the quotient is representable: a zero observed mass
    # is unobserved by definition, and a subnormal one (e.g. 1e-310) would
    # overflow the division to infinity — the same "effectively unobserved"
    # verdict — while leaking a RuntimeWarning that ``np.errstate`` can only
    # suppress by widening to ``over``.  Routing both straight to the
    # unobserved ratio keeps the result identical and the computation clean
    # of floating-point faults.
    representable = observed >= target / np.finfo(float).max
    ratios = np.full(target.shape, _UNOBSERVED_RATIO)
    np.divide(target, observed, out=ratios,
              where=(observed > 0) & representable)

    # Configurations absent from both distributions are neutral.
    ratios = np.where((observed == 0) & (target == 0), 1.0, ratios)

    if previous is not None:
        ratios = ratios * previous

    finite = ratios[np.isfinite(ratios)]
    if finite.size == 0 or finite.max() <= 0:
        # Degenerate: nothing observed at all; accept everything.
        return np.ones_like(target)
    ceiling = finite.max()
    ratios = np.where(np.isfinite(ratios), ratios, ceiling)

    supremum = ratios.max()
    if supremum <= 0:
        return np.ones_like(target)
    acceptance = ratios / supremum

    # Keep the expected (proposal-weighted) acceptance rate above a floor so
    # a single outlier ratio cannot starve edge generation; see the note on
    # _MIN_EXPECTED_ACCEPTANCE above.  Rescaling interacts with the clip at
    # one, so repeat until the floor is met (in the worst case everything
    # saturates at one and the rate equals the total observed mass).
    observed_mass = float(observed.sum())
    if observed_mass > 0:
        for _ in range(50):
            expected_rate = float(np.dot(observed, np.clip(acceptance, 0.0, 1.0)))
            if expected_rate >= min(_MIN_EXPECTED_ACCEPTANCE, observed_mass) \
                    or expected_rate <= 0.0:
                break
            acceptance = np.clip(
                acceptance * (_MIN_EXPECTED_ACCEPTANCE / expected_rate), 0.0, 1.0
            )

    # Guard against zero acceptance, which would make a configuration
    # unreachable forever; keep a tiny floor instead.
    return np.clip(acceptance, 1e-6, 1.0)


def observed_correlations(graph: AttributedGraph) -> np.ndarray:
    """Measure Θ'_F on a synthetic graph whose attributes are already assigned."""
    return connection_probabilities(graph)
