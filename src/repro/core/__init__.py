"""The paper's primary contribution: AGM and its differentially private adaptation.

* :mod:`repro.core.acceptance` — the accept/reject machinery that couples a
  structural model with the target attribute–edge correlations.
* :mod:`repro.core.agm` — the (non-private) Attributed Graph Model synthesis
  loop of Pfeiffer et al., restructured as in Section 4 so the acceptance
  probabilities are applied inside the structural model's sampler.
* :mod:`repro.core.agm_dp` — AGM-DP (Algorithm 3): the end-to-end
  differentially private workflow, with TriCycLe or FCL as the structural
  backend and explicit privacy-budget accounting.
"""

from repro.core.acceptance import compute_acceptance_probabilities
from repro.core.agm import AgmParameters, AgmSynthesizer, learn_agm
from repro.core.agm_dp import AgmDp, BudgetSplit, learn_agm_dp

__all__ = [
    "compute_acceptance_probabilities",
    "AgmParameters",
    "AgmSynthesizer",
    "learn_agm",
    "AgmDp",
    "BudgetSplit",
    "learn_agm_dp",
]
