"""The paper's primary contribution: AGM and its differentially private adaptation.

* :mod:`repro.core.acceptance` — the accept/reject machinery that couples a
  structural model with the target attribute–edge correlations.
* :mod:`repro.core.agm` — the (non-private) Attributed Graph Model synthesis
  loop of Pfeiffer et al., restructured as in Section 4 so the acceptance
  probabilities are applied inside the structural model's sampler.
* :mod:`repro.core.agm_dp` — AGM-DP (Algorithm 3): the end-to-end
  differentially private workflow, with explicit privacy accounting.
* :mod:`repro.core.registry` — the pluggable structural-backend registry
  (``"tricycle"`` / ``"fcl"`` plus any plugin registered at runtime).
* :mod:`repro.core.pipeline` — the staged synthesis engine
  (estimate → fit → generate → postprocess → evaluate) with per-stage
  timing, per-stage random streams and a serializable run manifest.
"""

from repro.core.acceptance import compute_acceptance_probabilities
from repro.core.agm import AgmParameters, AgmSynthesizer, learn_agm
from repro.core.agm_dp import AgmDp, BudgetSplit, learn_agm_dp
from repro.core.pipeline import (
    PipelineResult,
    PipelineStage,
    RunManifest,
    SynthesisPipeline,
    register_stage,
)
from repro.core.registry import (
    StructuralBackend,
    backend_names,
    get_backend,
    register_backend,
)

__all__ = [
    "compute_acceptance_probabilities",
    "AgmParameters",
    "AgmSynthesizer",
    "learn_agm",
    "AgmDp",
    "BudgetSplit",
    "learn_agm_dp",
    "SynthesisPipeline",
    "PipelineResult",
    "PipelineStage",
    "RunManifest",
    "register_stage",
    "StructuralBackend",
    "register_backend",
    "get_backend",
    "backend_names",
]
