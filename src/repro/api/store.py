"""A persistent on-disk :class:`ModelArtifact` store shared across processes.

The store is a flat directory keyed by ``spec_hash``: each fitted model is a
``<spec_hash>.json`` manifest plus its ``<spec_hash>.npz`` array sidecar
(format version 2, see :mod:`repro.api.artifact`).  Writes go through
:meth:`ModelArtifact.save`'s fsync-then-rename protocol, so concurrent
readers in other worker processes observe either the previous complete
artifact or the new one — never a torn file.

Cross-process fit coordination uses an advisory ``fcntl.flock`` on a
``<spec_hash>.fitlock`` sidecar: :meth:`ArtifactStore.fit_lock` serialises
the fit of one spec across every worker sharing the directory, which is what
keeps the ε ledger honest under multi-process serving — N workers racing the
same cold spec must produce exactly one fit (one ε spend), with the losers
loading the winner's artifact from disk.  The lock file is separate from the
manifest so locking never interferes with the atomic-rename publish.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, List, Optional, Union

try:  # pragma: no cover - always present on the POSIX targets we support
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

from repro.api.artifact import ArtifactError, ModelArtifact

__all__ = ["ArtifactStore"]

_LOCK_SUFFIX = ".fitlock"


def _check_spec_hash(spec_hash: str) -> str:
    """Reject hashes that could escape the store directory."""
    if not spec_hash or os.path.basename(spec_hash) != spec_hash \
            or spec_hash.startswith("."):
        raise ArtifactError(f"invalid spec hash {spec_hash!r}")
    return spec_hash


class ArtifactStore:
    """Directory-backed artifact persistence keyed by ``spec_hash``.

    Parameters
    ----------
    root:
        Store directory; created (with parents) if missing.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        # Serialises fit_lock within one process; flock is per-(process,
        # file) and re-entrant across threads, so threads must queue here
        # before taking the advisory lock.
        self._thread_locks: dict = {}
        self._thread_locks_guard = threading.Lock()

    @property
    def root(self) -> Path:
        """The store directory."""
        return self._root

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def manifest_path(self, spec_hash: str) -> Path:
        """Where the manifest for ``spec_hash`` lives."""
        return self._root / f"{_check_spec_hash(spec_hash)}.json"

    def _lock_path(self, spec_hash: str) -> Path:
        return self._root / f"{_check_spec_hash(spec_hash)}{_LOCK_SUFFIX}"

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def get(self, spec_hash: str) -> Optional[ModelArtifact]:
        """Load the stored artifact for ``spec_hash``, or ``None`` if absent.

        A present-but-unreadable artifact raises — silently refitting over a
        corrupt store would spend ε the operator did not expect.
        """
        path = self.manifest_path(spec_hash)
        try:
            return ModelArtifact.load(path)
        except FileNotFoundError:
            return None

    def put(self, artifact: ModelArtifact) -> Path:
        """Persist ``artifact`` under its ``spec_hash`` (atomic publish)."""
        return artifact.save(self.manifest_path(artifact.spec_hash),
                             sidecar=True)

    def __contains__(self, spec_hash: str) -> bool:
        return self.manifest_path(spec_hash).exists()

    def spec_hashes(self) -> List[str]:
        """Every spec hash with a stored artifact, sorted."""
        return sorted(
            path.stem for path in self._root.glob("*.json")
            if not path.name.startswith(".")
        )

    # ------------------------------------------------------------------
    # Cross-process fit coordination
    # ------------------------------------------------------------------
    @contextmanager
    def fit_lock(self, spec_hash: str) -> Iterator[None]:
        """Hold the cross-process fit lock for ``spec_hash``.

        Blocks until every other holder — thread or process — releases.  The
        caller must re-check :meth:`get` after acquiring: the usual pattern
        is *check, lock, check again, fit, put* so a fit that lost the race
        loads the winner's artifact instead of spending ε twice.
        """
        with self._thread_locks_guard:
            thread_lock = self._thread_locks.setdefault(
                _check_spec_hash(spec_hash), threading.Lock()
            )
        with thread_lock:
            if fcntl is None:  # pragma: no cover - non-POSIX fallback
                yield
                return
            fd = os.open(self._lock_path(spec_hash),
                         os.O_CREAT | os.O_RDWR, 0o600)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
                yield
            finally:
                # Closing the descriptor releases the advisory lock.  The
                # lock file itself is left in place: unlinking it would race
                # a waiter that already opened the old inode.
                os.close(fd)
