"""The public API of the synthesis workflow: spec in, artifact out, samples free.

Three typed objects replace the ad-hoc entry points the library grew up with
(JSON run-config dicts, ``AgmDp(...)`` keyword soup, raw pipeline
construction):

* :class:`ReleaseSpec` — a frozen, schema-validated description of *what* to
  release (input, ε, backend, budget split, generation knobs), with
  ``from_json``/``to_json`` and error messages that name the offending field;
* :class:`ModelArtifact` — a versioned, persistable fitted model: AGM-DP
  parameters + privacy-accountant ledger + fit manifest, with a
  ``save``/``load`` round-trip that samples bit-identically to the in-memory
  model;
* :class:`ReleaseSession` — the facade: ``fit(spec) -> artifact``,
  ``sample(artifact, n, seed)``, ``evaluate(spec)``.  Fit once, sample many
  — sampling is post-processing and spends no additional ε.

The CLI, the Monte-Carlo runner, the examples and the HTTP service
(:mod:`repro.service`) are all thin clients of this package.

>>> from repro.api import ReleaseSpec, ReleaseSession
>>> spec = ReleaseSpec(dataset="lastfm", scale=0.1, epsilon=1.0, seed=7)
>>> session = ReleaseSession()
>>> artifact = session.fit(spec)               # spends epsilon, once
>>> graphs = session.sample(artifact, count=5, seed=11)   # free
"""

from repro.api.artifact import (
    ARTIFACT_FORMAT,
    ARTIFACT_FORMAT_VERSION,
    ArtifactError,
    ArtifactFormatError,
    ModelArtifact,
)
from repro.api.session import ReleaseSession
from repro.api.spec import SPEC_VERSION, ReleaseSpec, SpecValidationError
from repro.api.store import ArtifactStore

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactError",
    "ArtifactFormatError",
    "ArtifactStore",
    "ModelArtifact",
    "ReleaseSession",
    "ReleaseSpec",
    "SPEC_VERSION",
    "SpecValidationError",
]
