"""The workflow facade of the public API: :class:`ReleaseSession`.

A session turns the library's layered machinery (pipeline, accountant,
Monte-Carlo runner) into the three verbs a data owner actually needs:

* :meth:`ReleaseSession.fit` — learn the DP parameters for a
  :class:`~repro.api.spec.ReleaseSpec` once, spending its ε, and get back a
  persistent :class:`~repro.api.artifact.ModelArtifact`;
* :meth:`ReleaseSession.sample` — draw any number of synthetic graphs from
  an artifact at zero additional privacy cost (post-processing, Theorem 2);
* :meth:`ReleaseSession.evaluate` — run the paper's Monte-Carlo utility
  estimate for a spec (Tables 2-5 metrics averaged over trials).

Fitted artifacts are cached in memory keyed by the spec's
:attr:`~repro.api.spec.ReleaseSpec.spec_hash`; a second ``fit`` of an
equivalent spec is a cache hit that performs no learning and spends no ε.
The cache is thread-safe with per-key single-flight locking, so the HTTP
service (:mod:`repro.service`) can serve concurrent requests from one shared
session and concurrent fits of the same spec learn exactly once.

The cache is **bounded**: it holds at most ``max_artifacts`` entries
(default from ``REPRO_ARTIFACT_CACHE_SIZE``, 64) with least-recently-used
eviction, so a long-lived ``repro serve`` daemon cannot grow without limit.
An evicted artifact is refit transparently on its next ``fit`` — note that
a refit spends the spec's ε again, exactly like any other cache miss.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.api.artifact import ModelArtifact
from repro.api.spec import ReleaseSpec
from repro.core.pipeline import SynthesisPipeline
from repro.experiments.runner import ExperimentConfig, run_trials_detailed
from repro.graphs.attributed import AttributedGraph
from repro.testing.faults import fire
from repro.utils.rng import SeedLike

#: Stage order of a fit-only pipeline run: resolve estimates, learn parameters.
FIT_STAGES = ("estimate", "fit")

#: Environment variable bounding the artifact cache of new sessions.
CACHE_SIZE_ENV_VAR = "REPRO_ARTIFACT_CACHE_SIZE"
#: Default artifact-cache bound when the environment does not override it.
DEFAULT_CACHE_SIZE = 64


def _default_cache_size() -> int:
    raw = os.environ.get(CACHE_SIZE_ENV_VAR)
    if not raw:
        return DEFAULT_CACHE_SIZE
    try:
        size = int(raw)
    except ValueError:
        return DEFAULT_CACHE_SIZE
    return max(1, size)


class ReleaseSession:
    """Fit once, sample many: the facade over the staged synthesis engine.

    Parameters
    ----------
    max_artifacts:
        Upper bound on cached artifacts (LRU eviction).  Defaults to the
        ``REPRO_ARTIFACT_CACHE_SIZE`` environment variable, or 64.
    ledger_store:
        Optional :class:`~repro.privacy.ledger.LedgerStore`.  When set,
        every *private* fit runs as a durable two-phase spend against the
        requesting tenant's persistent ledger: the spec's ε is reserved
        before learning starts (raising
        :class:`~repro.privacy.budget.BudgetExceededError` when the
        tenant's budget cannot cover it), committed with the accountant's
        per-stage breakdown when the fit lands, and aborted — or, after a
        crash, rolled back on ledger recovery — when it does not.
    artifact_store:
        Optional :class:`~repro.api.store.ArtifactStore` (or a directory
        path).  When set, fitted artifacts are persisted to disk and cache
        misses probe the store before refitting — a disk hit loads the
        stored model and spends no ε, which is what lets N worker processes
        (and daemon restarts) share one fit.  Fits of a cold spec hold the
        store's cross-process fit lock, so concurrent workers racing the
        same spec learn exactly once.
    """

    def __init__(self, max_artifacts: Optional[int] = None,
                 ledger_store: Optional[object] = None,
                 artifact_store: Optional[object] = None) -> None:
        self._lock = threading.Lock()
        self._fit_locks: Dict[str, threading.Lock] = {}
        self._artifacts: "OrderedDict[str, ModelArtifact]" = OrderedDict()
        self._max_artifacts = (
            _default_cache_size() if max_artifacts is None
            else max(1, int(max_artifacts))
        )
        self._ledger_store = ledger_store
        if isinstance(artifact_store, (str, os.PathLike)):
            from repro.api.store import ArtifactStore

            artifact_store = ArtifactStore(artifact_store)
        self._artifact_store = artifact_store
        self._fits = 0
        self._cache_hits = 0
        self._disk_hits = 0
        self._evictions = 0

    @property
    def ledger_store(self):
        """The attached :class:`~repro.privacy.ledger.LedgerStore` (or ``None``)."""
        return self._ledger_store

    @property
    def artifact_store(self):
        """The attached :class:`~repro.api.store.ArtifactStore` (or ``None``)."""
        return self._artifact_store

    def attach_ledger_store(self, ledger_store) -> None:
        """Attach a persistent ledger store to an existing session.

        Refuses to silently replace one that is already attached — two
        stores double-accounting the same fits is never intended.
        """
        if self._ledger_store is not None and self._ledger_store is not ledger_store:
            raise ValueError("a different ledger store is already attached")
        self._ledger_store = ledger_store

    @property
    def max_artifacts(self) -> int:
        """The artifact-cache bound (LRU eviction beyond it)."""
        return self._max_artifacts

    def _cache_get(self, key: str) -> Optional[ModelArtifact]:
        """Look up ``key``, refreshing its recency.  Caller holds the lock."""
        artifact = self._artifacts.get(key)
        if artifact is not None:
            self._artifacts.move_to_end(key)
        return artifact

    def _cache_put(self, key: str, artifact: ModelArtifact) -> None:
        """Insert ``key``, evicting the least recent.  Caller holds the lock.

        Evictions never touch ``_fit_locks``: a fit lock exists only while
        its fit is in flight (it is registered on miss and dropped when the
        artifact lands), so popping one here could orphan a waiter and let
        two fits of the same spec run concurrently.
        """
        self._artifacts[key] = artifact
        self._artifacts.move_to_end(key)
        while len(self._artifacts) > self._max_artifacts:
            self._artifacts.popitem(last=False)
            self._evictions += 1

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, spec: ReleaseSpec, graph: Optional[AttributedGraph] = None,
            checkpoint: Optional[Callable[[], None]] = None) -> ModelArtifact:
        """Learn the model for ``spec`` (or return the cached artifact).

        ``graph`` optionally supplies an already-loaded input graph; the
        caller is responsible for it matching the spec's input description.
        """
        artifact, _cache_hit = self.fit_cached(spec, graph=graph,
                                               checkpoint=checkpoint)
        return artifact

    def fit_cached(self, spec: ReleaseSpec,
                   graph: Optional[AttributedGraph] = None,
                   checkpoint: Optional[Callable[[], None]] = None
                   ) -> Tuple[ModelArtifact, bool]:
        """Like :meth:`fit`, also reporting whether the cache served the fit.

        Concurrent calls for the same spec hash are single-flighted: one
        caller learns, the rest block on the per-key lock and receive the
        cached artifact.

        ``checkpoint`` is a cooperative-cancellation hook forwarded to the
        pipeline's stage boundaries (see
        :meth:`~repro.core.pipeline.SynthesisPipeline.run`); a fit cancelled
        through it aborts its ledger reservation like any other failure.
        """
        key = spec.spec_hash
        while True:
            with self._lock:
                artifact = self._cache_get(key)
                if artifact is not None:
                    self._cache_hits += 1
                    return artifact, True
                key_lock = self._fit_locks.setdefault(key, threading.Lock())
            with key_lock:
                with self._lock:
                    if self._fit_locks.get(key) is not key_lock:
                        # The fit we queued behind completed (and dropped
                        # its lock) while we waited; retry through the
                        # cache so a fresh fit single-flights correctly.
                        continue
                    artifact = self._cache_get(key)
                    if artifact is not None:
                        self._cache_hits += 1
                        return artifact, True
                if self._artifact_store is not None:
                    artifact, from_disk = self._fit_through_store(
                        key, spec, graph, checkpoint
                    )
                else:
                    artifact, from_disk = self._fit(spec, graph, checkpoint), \
                        False
                with self._lock:
                    self._cache_put(key, artifact)
                    if from_disk:
                        self._cache_hits += 1
                        self._disk_hits += 1
                    else:
                        self._fits += 1
                    # The lock's lifetime is the fit's: drop it so the dict
                    # only ever holds in-flight keys.
                    self._fit_locks.pop(key, None)
            return artifact, from_disk

    def _fit_through_store(self, key: str, spec: ReleaseSpec,
                           graph: Optional[AttributedGraph],
                           checkpoint: Optional[Callable[[], None]]
                           ) -> Tuple[ModelArtifact, bool]:
        """Disk-backed miss path: *check, lock, check again, fit, publish*.

        A stored artifact — found either before or after taking the
        cross-process fit lock (another worker may have fitted while we
        waited) — is returned as a hit: loading it spends no ε.
        """
        stored = self._artifact_store.get(key)
        if stored is not None:
            return stored, True
        with self._artifact_store.fit_lock(key):
            stored = self._artifact_store.get(key)
            if stored is not None:
                return stored, True
            artifact = self._fit(spec, graph, checkpoint)
            self._artifact_store.put(artifact)
        return artifact, False

    def _fit(self, spec: ReleaseSpec, graph: Optional[AttributedGraph],
             checkpoint: Optional[Callable[[], None]] = None) -> ModelArtifact:
        fire("session.fit.start")
        ledger = None
        if self._ledger_store is not None and spec.epsilon is not None:
            from repro.privacy.ledger import DEFAULT_TENANT

            ledger = self._ledger_store.ledger(spec.tenant or DEFAULT_TENANT)
        if ledger is None:
            return self._fit_pipeline(spec, graph, checkpoint)
        # Two-phase spend: reserve before learning (the authoritative budget
        # check), commit the accountant's actual breakdown when the fit
        # lands.  Leaving the block uncommitted aborts the reservation —
        # except for a simulated crash (the transaction's __exit__ honours
        # the simulated-process-death contract), which ledger recovery rolls
        # back on the next open instead.
        with ledger.reserve(spec.epsilon) as txn:
            artifact = self._fit_pipeline(spec, graph, checkpoint,
                                          collect=txn)
        fire("session.fit.committed")
        return artifact

    def _fit_pipeline(self, spec: ReleaseSpec,
                      graph: Optional[AttributedGraph],
                      checkpoint: Optional[Callable[[], None]],
                      collect: Optional[object] = None) -> ModelArtifact:
        input_graph = graph if graph is not None else spec.load_graph()
        pipeline = SynthesisPipeline(
            epsilon=spec.epsilon,
            backend=spec.backend,
            truncation_k=spec.truncation_k,
            budget_split=spec.budget_split,
            num_iterations=spec.num_iterations,
            handle_orphans=spec.handle_orphans,
            rewire_equivalence=spec.rewire_equivalence,
            samples=1,
            evaluate=False,
            stages=FIT_STAGES,
        )
        result = pipeline.run(input_graph, rng=spec.seed,
                              checkpoint=checkpoint)
        # The input description rides in the manifest's `extra` block, which
        # RunManifest.from_dict preserves, so artifact.run_manifest() keeps
        # the provenance through a save/load round-trip.
        result.manifest.extra["input"] = spec.describe_input()
        manifest = result.manifest.to_dict()
        artifact = ModelArtifact.create(
            result.parameters, spec,
            accountant=result.accountant, manifest=manifest,
        )
        if collect is not None:
            # Commit only after the artifact exists: the committed spend and
            # the servable model become durable together or not at all.
            fire("session.fit.before_commit")
            collect.commit(accountant=result.accountant)
        return artifact

    # ------------------------------------------------------------------
    # Sampling (free: post-processing of the artifact)
    # ------------------------------------------------------------------
    def sample(self, artifact: Union[ModelArtifact, ReleaseSpec, str],
               count: int = 1, seed: SeedLike = None,
               memory_budget_mb: Optional[int] = None
               ) -> List[AttributedGraph]:
        """Sample ``count`` synthetic graphs from an artifact.

        Accepts a :class:`ModelArtifact`, a :class:`ReleaseSpec` (fitted
        through the cache first — so repeated calls fit once) or a cached
        artifact id.  Sampling spends no privacy budget and sample ``i`` is a
        pure function of ``(artifact, seed, i)``.  ``memory_budget_mb``
        bounds generation's working set; when a :class:`ReleaseSpec` is
        given, its own ``memory_budget_mb`` is the default.
        """
        if isinstance(artifact, ReleaseSpec):
            if memory_budget_mb is None:
                memory_budget_mb = artifact.memory_budget_mb
            artifact = self.fit(artifact)
        elif isinstance(artifact, str):
            artifact = self.get_artifact(artifact)
        return artifact.sample(count=count, seed=seed,
                               memory_budget_mb=memory_budget_mb)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, spec: ReleaseSpec,
                 graph: Optional[AttributedGraph] = None) -> Dict[str, Any]:
        """Monte-Carlo utility estimate for ``spec`` (the CLI ``run`` body).

        Executes ``spec.trials`` synthesis pipelines (refitting the DP
        parameters per trial, as the paper's averages do) over
        ``spec.workers`` processes and returns a JSON-serialisable result:
        the averaged Tables 2-5 metric row, the averaged per-stage ε spends
        and the first trial's manifest.
        """
        input_graph = graph if graph is not None else spec.load_graph()
        config = ExperimentConfig.from_spec(spec)
        outcome = run_trials_detailed(input_graph, config, rng=spec.seed)
        manifest = outcome.manifest
        return {
            "spec": spec.to_dict(),
            "spec_hash": spec.spec_hash,
            "model": config.label,
            "trials": outcome.trials,
            "workers": outcome.workers,
            "report": outcome.report.as_paper_row(),
            "spends": outcome.spend_summary(),
            "manifest": manifest.to_dict() if manifest is not None else None,
            # Maintained-vs-recomputed counters of the first trial's
            # metrics accelerator (diagnosability of the evaluation leg).
            "metrics_accelerator": (
                manifest.extra.get("metrics_accelerator")
                if manifest is not None else None
            ),
        }

    # ------------------------------------------------------------------
    # Cache views
    # ------------------------------------------------------------------
    def get_artifact(self, artifact_id: str) -> ModelArtifact:
        """Look up a cached artifact by id (or bare spec hash).

        Raises :class:`KeyError` when the artifact is not in the cache.
        """
        key = artifact_id[4:] if artifact_id.startswith("art-") else artifact_id
        with self._lock:
            artifact = self._cache_get(key)
            if artifact is None:
                raise KeyError(f"unknown artifact {artifact_id!r}")
            return artifact

    def artifacts(self) -> List[Dict[str, Any]]:
        """Metadata for every cached artifact."""
        with self._lock:
            cached = list(self._artifacts.values())
        return [artifact.describe() for artifact in cached]

    def stats(self) -> Dict[str, int]:
        """Cache counters: fits, hits, evictions, artifacts held, the bound."""
        with self._lock:
            return {
                "fits": self._fits,
                "cache_hits": self._cache_hits,
                "disk_hits": self._disk_hits,
                "evictions": self._evictions,
                "artifacts": len(self._artifacts),
                "max_artifacts": self._max_artifacts,
            }
