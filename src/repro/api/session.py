"""The workflow facade of the public API: :class:`ReleaseSession`.

A session turns the library's layered machinery (pipeline, accountant,
Monte-Carlo runner) into the three verbs a data owner actually needs:

* :meth:`ReleaseSession.fit` — learn the DP parameters for a
  :class:`~repro.api.spec.ReleaseSpec` once, spending its ε, and get back a
  persistent :class:`~repro.api.artifact.ModelArtifact`;
* :meth:`ReleaseSession.sample` — draw any number of synthetic graphs from
  an artifact at zero additional privacy cost (post-processing, Theorem 2);
* :meth:`ReleaseSession.evaluate` — run the paper's Monte-Carlo utility
  estimate for a spec (Tables 2-5 metrics averaged over trials).

Fitted artifacts are cached in memory keyed by the spec's
:attr:`~repro.api.spec.ReleaseSpec.spec_hash`; a second ``fit`` of an
equivalent spec is a cache hit that performs no learning and spends no ε.
The cache is thread-safe with per-key single-flight locking, so the HTTP
service (:mod:`repro.service`) can serve concurrent requests from one shared
session and concurrent fits of the same spec learn exactly once.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.api.artifact import ModelArtifact
from repro.api.spec import ReleaseSpec
from repro.core.pipeline import SynthesisPipeline
from repro.experiments.runner import ExperimentConfig, run_trials_detailed
from repro.graphs.attributed import AttributedGraph
from repro.utils.rng import SeedLike

#: Stage order of a fit-only pipeline run: resolve estimates, learn parameters.
FIT_STAGES = ("estimate", "fit")


class ReleaseSession:
    """Fit once, sample many: the facade over the staged synthesis engine."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._fit_locks: Dict[str, threading.Lock] = {}
        self._artifacts: Dict[str, ModelArtifact] = {}
        self._fits = 0
        self._cache_hits = 0

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, spec: ReleaseSpec, graph: Optional[AttributedGraph] = None
            ) -> ModelArtifact:
        """Learn the model for ``spec`` (or return the cached artifact).

        ``graph`` optionally supplies an already-loaded input graph; the
        caller is responsible for it matching the spec's input description.
        """
        artifact, _cache_hit = self.fit_cached(spec, graph=graph)
        return artifact

    def fit_cached(self, spec: ReleaseSpec,
                   graph: Optional[AttributedGraph] = None
                   ) -> Tuple[ModelArtifact, bool]:
        """Like :meth:`fit`, also reporting whether the cache served the fit.

        Concurrent calls for the same spec hash are single-flighted: one
        caller learns, the rest block on the per-key lock and receive the
        cached artifact.
        """
        key = spec.spec_hash
        with self._lock:
            artifact = self._artifacts.get(key)
            if artifact is not None:
                self._cache_hits += 1
                return artifact, True
            key_lock = self._fit_locks.setdefault(key, threading.Lock())
        with key_lock:
            with self._lock:
                artifact = self._artifacts.get(key)
                if artifact is not None:
                    self._cache_hits += 1
                    return artifact, True
            artifact = self._fit(spec, graph)
            with self._lock:
                self._artifacts[key] = artifact
                self._fits += 1
        return artifact, False

    def _fit(self, spec: ReleaseSpec, graph: Optional[AttributedGraph]
             ) -> ModelArtifact:
        input_graph = graph if graph is not None else spec.load_graph()
        pipeline = SynthesisPipeline(
            epsilon=spec.epsilon,
            backend=spec.backend,
            truncation_k=spec.truncation_k,
            budget_split=spec.budget_split,
            num_iterations=spec.num_iterations,
            handle_orphans=spec.handle_orphans,
            samples=1,
            evaluate=False,
            stages=FIT_STAGES,
        )
        result = pipeline.run(input_graph, rng=spec.seed)
        # The input description rides in the manifest's `extra` block, which
        # RunManifest.from_dict preserves, so artifact.run_manifest() keeps
        # the provenance through a save/load round-trip.
        result.manifest.extra["input"] = spec.describe_input()
        manifest = result.manifest.to_dict()
        return ModelArtifact.create(
            result.parameters, spec,
            accountant=result.accountant, manifest=manifest,
        )

    # ------------------------------------------------------------------
    # Sampling (free: post-processing of the artifact)
    # ------------------------------------------------------------------
    def sample(self, artifact: Union[ModelArtifact, ReleaseSpec, str],
               count: int = 1, seed: SeedLike = None
               ) -> List[AttributedGraph]:
        """Sample ``count`` synthetic graphs from an artifact.

        Accepts a :class:`ModelArtifact`, a :class:`ReleaseSpec` (fitted
        through the cache first — so repeated calls fit once) or a cached
        artifact id.  Sampling spends no privacy budget and sample ``i`` is a
        pure function of ``(artifact, seed, i)``.
        """
        if isinstance(artifact, ReleaseSpec):
            artifact = self.fit(artifact)
        elif isinstance(artifact, str):
            artifact = self.get_artifact(artifact)
        return artifact.sample(count=count, seed=seed)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, spec: ReleaseSpec,
                 graph: Optional[AttributedGraph] = None) -> Dict[str, Any]:
        """Monte-Carlo utility estimate for ``spec`` (the CLI ``run`` body).

        Executes ``spec.trials`` synthesis pipelines (refitting the DP
        parameters per trial, as the paper's averages do) over
        ``spec.workers`` processes and returns a JSON-serialisable result:
        the averaged Tables 2-5 metric row, the averaged per-stage ε spends
        and the first trial's manifest.
        """
        input_graph = graph if graph is not None else spec.load_graph()
        config = ExperimentConfig.from_spec(spec)
        outcome = run_trials_detailed(input_graph, config, rng=spec.seed)
        manifest = outcome.manifest
        return {
            "spec": spec.to_dict(),
            "spec_hash": spec.spec_hash,
            "model": config.label,
            "trials": outcome.trials,
            "workers": outcome.workers,
            "report": outcome.report.as_paper_row(),
            "spends": outcome.spend_summary(),
            "manifest": manifest.to_dict() if manifest is not None else None,
        }

    # ------------------------------------------------------------------
    # Cache views
    # ------------------------------------------------------------------
    def get_artifact(self, artifact_id: str) -> ModelArtifact:
        """Look up a cached artifact by id (or bare spec hash).

        Raises :class:`KeyError` when the artifact is not in the cache.
        """
        key = artifact_id[4:] if artifact_id.startswith("art-") else artifact_id
        with self._lock:
            try:
                return self._artifacts[key]
            except KeyError:
                raise KeyError(f"unknown artifact {artifact_id!r}") from None

    def artifacts(self) -> List[Dict[str, Any]]:
        """Metadata for every cached artifact."""
        with self._lock:
            cached = list(self._artifacts.values())
        return [artifact.describe() for artifact in cached]

    def stats(self) -> Dict[str, int]:
        """Cache counters: fits performed, cache hits, artifacts held."""
        with self._lock:
            return {
                "fits": self._fits,
                "cache_hits": self._cache_hits,
                "artifacts": len(self._artifacts),
            }
