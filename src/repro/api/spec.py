"""The declarative layer of the public API: :class:`ReleaseSpec`.

A release spec says *what* to release — which input graph, at which privacy
budget, through which structural backend, with which budget split and
generation knobs — without saying anything about *how* the release is
executed (serially, across worker processes, or behind the HTTP service).
Everything that drives the synthesis workflow (the CLI ``run`` and
``synthesize`` commands, the Monte-Carlo runner, the service's ``/fit`` and
``/sample`` endpoints, the examples) consumes the same frozen, validated
object, so there is exactly one place where a run configuration is parsed,
defaulted and checked.

Validation errors are :class:`SpecValidationError`\\ s whose message always
starts with the offending field name, so a bad JSON config fails with
``"epsilon: must be a positive, finite privacy budget, got -1.0"`` rather
than a stack trace from deep inside a mechanism.

The canonical JSON form carries ``"spec_version": 1``.  Un-versioned flat
dicts — the pre-API ``repro run`` config format — are still accepted by
:meth:`ReleaseSpec.from_dict` and are converted with a single
:class:`DeprecationWarning` pointing at the new format.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import warnings
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.core.agm_dp import BudgetSplit
from repro.core.registry import backend_names, get_backend
from repro.datasets.registry import dataset_names, load_dataset
from repro.graphs.attributed import AttributedGraph
from repro.graphs.io import load_attributed_graph

#: Version of the canonical JSON spec format written by :meth:`ReleaseSpec.to_json`.
SPEC_VERSION = 1

#: Dataset the pre-API CLI defaulted to when a config named no input.
_LEGACY_DEFAULT_DATASET = "lastfm"


class SpecValidationError(ValueError):
    """A release spec failed validation.

    The message always starts with the name of the offending field, which is
    also available programmatically as :attr:`field`.
    """

    def __init__(self, field: str, message: str) -> None:
        self.field = field
        super().__init__(f"{field}: {message}")


def _coerce_int(field: str, value: Any, minimum: Optional[int] = None) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise SpecValidationError(
            field, f"expected an integer, got {type(value).__name__}"
        )
    try:
        coerced = int(value)
    except (TypeError, ValueError):
        raise SpecValidationError(field, f"expected an integer, got {value!r}") from None
    if float(coerced) != float(value):
        raise SpecValidationError(field, f"expected an integer, got {value!r}")
    if minimum is not None and coerced < minimum:
        raise SpecValidationError(field, f"must be >= {minimum}, got {coerced}")
    return coerced


def _coerce_float(field: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise SpecValidationError(
            field, f"expected a number, got {type(value).__name__}"
        )
    try:
        return float(value)
    except (TypeError, ValueError):
        raise SpecValidationError(field, f"expected a number, got {value!r}") from None


@dataclass(frozen=True)
class ReleaseSpec:
    """A frozen, validated description of one private synthesis release.

    Attributes
    ----------
    dataset / scale:
        A registered synthetic dataset name and its generation scale, or —
    edges / attributes:
        paths to an edge-list file and an optional node-attribute table.
        Exactly one of ``dataset`` and ``edges`` must be given.
    seed:
        Root random seed for the fit.
    epsilon:
        Global privacy budget ε, or ``None`` for the non-private baseline.
    backend:
        A registered structural backend name (``"tricycle"``, ``"fcl"``, or a
        plugin).
    budget_split:
        Optional :class:`~repro.core.agm_dp.BudgetSplit` (a mapping of its
        keyword arguments is accepted and converted).
    truncation_k:
        Truncation parameter for Θ_F (``None``: the ``n^(1/3)`` heuristic).
    num_iterations:
        Acceptance-refinement rounds used when sampling.
    handle_orphans:
        Forwarded to the structural backend's model builder.
    rewire_equivalence:
        Rewiring equivalence contract for backends with a rewiring phase:
        ``"exact"`` keeps the bit-identical scalar swap sequence,
        ``"distributional"`` runs the speculative block engine (same degree
        / triangle / Θ'_F targets, pinned by distributional closeness).
        Part of the fit fingerprint, like ``num_iterations``: artifacts
        record the contract their samples are drawn under.
    samples:
        Synthetic graphs produced per pipeline run.
    trials / workers:
        Monte-Carlo evaluation controls (:meth:`ReleaseSession.evaluate`).
    output:
        Where the CLI writes the run result (``None``: stdout).
    tenant:
        Accounting identity the release is billed to.  The service charges
        the fit's ε against this tenant's persistent ledger and applies its
        rate limits.  Like the other run-control fields it is **excluded**
        from the fit fingerprint: two tenants requesting the same release
        share one fitted artifact (fit-once-sample-many), and only the
        tenant whose request actually triggered the fit spends ε.
    memory_budget_mb:
        Optional generation memory budget in MiB (>= 1).  Forwarded to the
        structural backends, which shard their sampling passes to fit and
        raise the structured ``over_memory`` error when a stage's
        pessimistic byte estimate cannot fit.  A run-control knob like
        ``tenant``: **excluded** from the fit fingerprint — the budget
        changes how a graph is generated (shard sizes), never which graph
        distribution is generated, so specs differing only in budget share
        one fitted artifact.
    """

    dataset: Optional[str] = None
    scale: Optional[float] = None
    edges: Optional[str] = None
    attributes: Optional[str] = None
    seed: int = 0
    epsilon: Optional[float] = None
    backend: str = "tricycle"
    budget_split: Optional[BudgetSplit] = None
    truncation_k: Optional[int] = None
    num_iterations: int = 2
    handle_orphans: bool = True
    rewire_equivalence: str = "exact"
    samples: int = 1
    trials: int = 3
    workers: Optional[int] = None
    output: Optional[str] = None
    tenant: Optional[str] = None
    memory_budget_mb: Optional[int] = None

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        def put(name: str, value: Any) -> None:
            object.__setattr__(self, name, value)

        if self.dataset is not None and self.edges is not None:
            raise SpecValidationError(
                "dataset", "give either 'dataset' or 'edges', not both"
            )
        if self.dataset is None and self.edges is None:
            raise SpecValidationError(
                "dataset",
                "an input is required: name a registered 'dataset' or an "
                "'edges' file",
            )
        if self.dataset is not None:
            if not isinstance(self.dataset, str):
                raise SpecValidationError(
                    "dataset",
                    f"expected a dataset name, got {type(self.dataset).__name__}",
                )
            name = self.dataset.lower()
            if name not in dataset_names():
                raise SpecValidationError(
                    "dataset",
                    f"unknown dataset {self.dataset!r}; registered: "
                    f"{', '.join(dataset_names())}",
                )
            put("dataset", name)
        if self.edges is not None:
            if not isinstance(self.edges, (str, Path)):
                raise SpecValidationError(
                    "edges",
                    f"expected an edge-list path, got {type(self.edges).__name__}",
                )
            put("edges", str(self.edges))
        if self.attributes is not None:
            if self.edges is None:
                raise SpecValidationError(
                    "attributes", "'attributes' requires an 'edges' input file"
                )
            put("attributes", str(self.attributes))
        if self.scale is not None:
            if self.edges is not None:
                raise SpecValidationError(
                    "scale",
                    "'scale' applies to registered datasets, not 'edges' inputs",
                )
            scale = _coerce_float("scale", self.scale)
            if not math.isfinite(scale) or scale <= 0:
                raise SpecValidationError("scale", f"must be positive, got {scale}")
            put("scale", scale)

        # numpy's SeedSequence rejects negative entropy, so catch it here
        # with a field-named message instead of a fit-time traceback.
        put("seed", _coerce_int("seed", self.seed, minimum=0))

        if self.epsilon is not None:
            epsilon = _coerce_float("epsilon", self.epsilon)
            if not math.isfinite(epsilon) or epsilon <= 0:
                raise SpecValidationError(
                    "epsilon",
                    f"must be a positive, finite privacy budget, got {epsilon}",
                )
            put("epsilon", epsilon)

        if not isinstance(self.backend, str):
            raise SpecValidationError(
                "backend",
                f"expected a backend name, got {type(self.backend).__name__}",
            )
        try:
            get_backend(self.backend)
        except ValueError:
            raise SpecValidationError(
                "backend",
                f"unknown backend {self.backend!r}; registered: "
                f"{', '.join(backend_names())}",
            ) from None

        if self.budget_split is not None:
            split = self.budget_split
            if isinstance(split, Mapping):
                try:
                    split = BudgetSplit(**split)
                except TypeError as exc:
                    raise SpecValidationError("budget_split", str(exc)) from None
                except ValueError as exc:
                    raise SpecValidationError("budget_split", str(exc)) from None
            elif isinstance(split, BudgetSplit):
                pass
            else:
                raise SpecValidationError(
                    "budget_split",
                    "expected a mapping of budget fractions (attributes, "
                    f"correlations, structural, ...), got {type(split).__name__}",
                )
            put("budget_split", split)

        if self.truncation_k is not None:
            put("truncation_k", _coerce_int("truncation_k", self.truncation_k,
                                            minimum=1))
        put("num_iterations", _coerce_int("num_iterations", self.num_iterations,
                                          minimum=1))
        put("handle_orphans", bool(self.handle_orphans))
        if self.rewire_equivalence not in ("exact", "distributional"):
            raise SpecValidationError(
                "rewire_equivalence",
                "expected 'exact' or 'distributional', got "
                f"{self.rewire_equivalence!r}",
            )
        put("samples", _coerce_int("samples", self.samples, minimum=1))
        put("trials", _coerce_int("trials", self.trials, minimum=1))
        if self.memory_budget_mb is not None:
            put("memory_budget_mb",
                _coerce_int("memory_budget_mb", self.memory_budget_mb,
                            minimum=1))
        if self.workers is not None:
            put("workers", _coerce_int("workers", self.workers, minimum=1))
        if self.output is not None:
            put("output", str(self.output))
        if self.tenant is not None:
            if not isinstance(self.tenant, str):
                raise SpecValidationError(
                    "tenant",
                    f"expected a tenant name, got {type(self.tenant).__name__}",
                )
            # Tenant ids name ledger files on the service host: keep them to
            # a filesystem-safe charset and refuse dotfile-style names.
            if (not self.tenant or len(self.tenant) > 64
                    or self.tenant.startswith(".")
                    or not all((ch.isascii() and ch.isalnum()) or ch in "._-"
                               for ch in self.tenant)):
                raise SpecValidationError(
                    "tenant",
                    f"must be 1-64 characters of [A-Za-z0-9._-] not starting "
                    f"with '.', got {self.tenant!r}",
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any], *,
                  source: str = "release spec") -> "ReleaseSpec":
        """Build a spec from a (possibly legacy) plain dictionary.

        Canonical dicts carry ``"spec_version": 1``; in them, unknown keys
        raise a :class:`SpecValidationError` naming the key.  Un-versioned
        flat dicts — the pre-API ``repro run`` config format — are accepted
        with a :class:`DeprecationWarning` and keep the old reader's
        permissiveness: extra keys are ignored, an ``edges`` input wins over
        ``dataset``/``scale``, and a config naming no input gets the old CLI
        default (``dataset="lastfm"``).
        """
        if not isinstance(mapping, Mapping):
            raise SpecValidationError(
                "spec", f"{source} must be a JSON object, got "
                        f"{type(mapping).__name__}"
            )
        data = dict(mapping)
        version = data.pop("spec_version", None)
        known = {spec_field.name for spec_field in fields(cls)}
        if version is None:
            warnings.warn(
                "un-versioned dict-style run configs are deprecated; add "
                f'"spec_version": {SPEC_VERSION} and validate through '
                "repro.api.ReleaseSpec (ReleaseSpec.to_json() writes the "
                "canonical format)",
                DeprecationWarning, stacklevel=2,
            )
            # Replicate what the old config reader tolerated: an 'edges'
            # input wins over dataset/scale, extra keys are ignored, and a
            # config naming no input falls back to the old CLI default.
            if data.get("edges"):
                data.pop("dataset", None)
                data.pop("scale", None)
            else:
                data.pop("edges", None)  # tolerate an explicit null/empty
                data.pop("attributes", None)
                data.setdefault("dataset", _LEGACY_DEFAULT_DATASET)
            data = {key: value for key, value in data.items() if key in known}
        elif version != SPEC_VERSION:
            raise SpecValidationError(
                "spec_version",
                f"unsupported spec_version {version!r}; this build reads "
                f"version {SPEC_VERSION}",
            )
        for key in data:
            if key not in known:
                raise SpecValidationError(
                    key,
                    f"unknown field in {source} (expected one of: "
                    f"{', '.join(sorted(known))})",
                )
        return cls(**data)

    @classmethod
    def from_json(cls, text: str, *, source: str = "release spec"
                  ) -> "ReleaseSpec":
        """Parse a spec from a JSON document string."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecValidationError("spec", f"invalid JSON in {source}: {exc}"
                                      ) from None
        return cls.from_dict(payload, source=source)

    @classmethod
    def from_json_file(cls, path: Union[str, Path]) -> "ReleaseSpec":
        """Load a spec from a JSON file on disk."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read(), source=str(path))

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The canonical JSON-serialisable form (``None`` fields omitted)."""
        data: Dict[str, Any] = {"spec_version": SPEC_VERSION}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if value is None:
                continue
            if isinstance(value, BudgetSplit):
                value = dataclasses.asdict(value)
            data[spec_field.name] = value
        return data

    def to_json(self, indent: int = 2) -> str:
        """Render the canonical JSON form."""
        return json.dumps(self.to_dict(), indent=indent)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def with_overrides(self, **overrides: Any) -> "ReleaseSpec":
        """A copy with the non-``None`` overrides applied (and re-validated).

        This is the single merge point for everything that layers settings on
        top of a config file — the CLI's ``--trials/--workers/--output``
        flags and the service both resolve precedence here, so an explicit
        override always beats the spec's stored value.
        """
        known = {spec_field.name for spec_field in fields(self)}
        changes = {}
        for key, value in overrides.items():
            if key not in known:
                raise SpecValidationError(
                    key, f"unknown field (cannot override; expected one of: "
                         f"{', '.join(sorted(known))})"
                )
            if value is not None:
                changes[key] = value
        if not changes:
            return self
        return dataclasses.replace(self, **changes)

    def fit_fingerprint(self) -> Dict[str, Any]:
        """The fields that determine a fitted model.

        Run-control knobs (``trials``, ``workers``, ``output``, ``samples``,
        ``tenant``, ``memory_budget_mb``) are excluded: two specs that
        differ only in how many evaluation trials to run, where to write
        results, which tenant is billed, or under what memory budget
        generation runs share one fitted artifact.

        File-based inputs are fingerprinted by *path*, not content: mutating
        an ``edges``/``attributes`` file under a running service would make
        its cache serve artifacts fitted on the old contents.  Write new
        data to a new path (or restart the service) instead.
        """
        split = (dataclasses.asdict(self.budget_split)
                 if self.budget_split is not None else None)
        return {
            "dataset": self.dataset,
            "scale": self.scale,
            "edges": self.edges,
            "attributes": self.attributes,
            "seed": self.seed,
            "epsilon": self.epsilon,
            "backend": self.backend,
            "budget_split": split,
            "truncation_k": self.truncation_k,
            "num_iterations": self.num_iterations,
            "handle_orphans": self.handle_orphans,
            "rewire_equivalence": self.rewire_equivalence,
        }

    @property
    def spec_hash(self) -> str:
        """Stable hash of the fit-relevant fields (the artifact cache key)."""
        payload = json.dumps(self.fit_fingerprint(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def describe_input(self) -> Dict[str, Any]:
        """A manifest-friendly description of the input source."""
        if self.edges is not None:
            return {"edges": self.edges, "attributes": self.attributes}
        return {"dataset": self.dataset, "scale": self.scale}

    def load_graph(self) -> AttributedGraph:
        """Materialise the input graph the spec describes."""
        if self.edges is not None:
            graph, _mapping = load_attributed_graph(self.edges, self.attributes)
            return graph
        return load_dataset(self.dataset, scale=self.scale, seed=self.seed)

    @property
    def is_private(self) -> bool:
        """Whether the spec describes a differentially private release."""
        return self.epsilon is not None
