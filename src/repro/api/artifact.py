"""Versioned on-disk artifacts for fitted AGM(-DP) models: :class:`ModelArtifact`.

The paper's central serving property is post-processing invariance: once the
DP parameters are learned, any number of synthetic graphs can be sampled at
zero additional privacy cost (Theorem 2).  An artifact is the persisted form
of that one-time learning step — the fitted :class:`~repro.core.agm.AgmParameters`,
the privacy accountant's ledger, and the fit manifest — so a model can be
fitted once, written to disk (or held in the service's cache) and sampled
forever after without ever touching the sensitive input again.

The on-disk format is a JSON manifest tagged with ``format`` and
``format_version``; :meth:`ModelArtifact.load` refuses documents from other
formats or future versions with an :class:`ArtifactFormatError` rather than
mis-reading them.  Format version 2 stores the large parameter arrays
(probability vectors, degree sequence) in an ``.npz`` sidecar next to the
manifest: the manifest stays a small human-readable document, the arrays are
raw binary (no float parsing on load, exact by construction), and
:func:`numpy.load` reads sidecar members lazily — each array is pulled from
the zip only when first accessed, which keeps manifest scans (the artifact
store's index, ``GET /artifacts``) from touching array data at all.
Version-1 documents (arrays inline in the JSON) still load.  Both layouts
round-trip bit-exactly, so a loaded artifact samples graphs that are
bit-identical to the in-memory model at the same seed.
"""

from __future__ import annotations

import datetime
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

import numpy as np

from repro.core.agm import AgmParameters, AgmSynthesizer
from repro.core.registry import get_backend
from repro.graphs.attributed import AttributedGraph
from repro.params.attribute_distribution import AttributeDistribution
from repro.params.correlations import CorrelationDistribution
from repro.testing.faults import fire
from repro.utils.rng import SeedLike, spawn_streams

#: Identifying tag of the artifact JSON document.
ARTIFACT_FORMAT = "repro.model-artifact"

#: Current version of the artifact format this build writes (it also reads
#: version 1, whose parameter arrays live inline in the JSON document).
ARTIFACT_FORMAT_VERSION = 2

#: Artifact format versions this build can read.
READABLE_FORMAT_VERSIONS = (1, 2)

#: Sidecar member names for the three large parameter arrays.
SIDECAR_ATTRIBUTE_KEY = "attribute_probabilities"
SIDECAR_CORRELATION_KEY = "correlation_probabilities"
SIDECAR_DEGREES_KEY = "degrees"


class ArtifactError(ValueError):
    """Base class for artifact problems."""


class ArtifactFormatError(ArtifactError):
    """The document is not a model artifact this build can read."""


# ----------------------------------------------------------------------
# Parameter (de)serialisation
# ----------------------------------------------------------------------
def _structural_to_dict(structural: Any) -> Dict[str, Any]:
    data: Dict[str, Any] = {"degrees": [int(d) for d in structural.degrees]}
    num_triangles = getattr(structural, "num_triangles", None)
    if num_triangles is not None:
        data["num_triangles"] = int(num_triangles)
    return data


def _structural_from_dict(backend: str, data: Mapping[str, Any]) -> Any:
    parameter_type = get_backend(backend).parameter_type
    kwargs: Dict[str, Any] = {
        "degrees": np.asarray(data["degrees"], dtype=np.int64)
    }
    if "num_triangles" in data:
        kwargs["num_triangles"] = int(data["num_triangles"])
    try:
        return parameter_type(**kwargs)
    except TypeError as exc:
        raise ArtifactFormatError(
            f"structural parameters do not match backend {backend!r}: {exc}"
        ) from None


def parameters_to_dict(parameters: AgmParameters) -> Dict[str, Any]:
    """Serialise :class:`AgmParameters` to a JSON-safe dictionary."""
    return {
        "backend": parameters.backend,
        "attribute_distribution": {
            "num_attributes": parameters.attribute_distribution.num_attributes,
            "probabilities": [
                float(p) for p in parameters.attribute_distribution.probabilities
            ],
        },
        "correlations": {
            "num_attributes": parameters.correlations.num_attributes,
            "probabilities": [
                float(p) for p in parameters.correlations.probabilities
            ],
        },
        "structural": _structural_to_dict(parameters.structural),
    }


def _resolve_array(section: Mapping[str, Any], key: str, sidecar_key: str,
                   arrays: Optional[Mapping[str, Any]], dtype) -> np.ndarray:
    """An array stored either inline (``section[key]``) or in the sidecar."""
    if key in section:
        return np.asarray(section[key], dtype=dtype)
    if arrays is not None and sidecar_key in arrays:
        return np.asarray(arrays[sidecar_key], dtype=dtype)
    raise ArtifactFormatError(
        f"artifact parameters are missing {key!r} (neither inline nor in the "
        f"sidecar as {sidecar_key!r})"
    )


def parameters_from_dict(data: Mapping[str, Any],
                         arrays: Optional[Mapping[str, Any]] = None
                         ) -> AgmParameters:
    """Rebuild :class:`AgmParameters` from :func:`parameters_to_dict` output.

    ``arrays`` supplies the large arrays when the document stores them in an
    ``.npz`` sidecar (format version 2) instead of inline; it may be a lazy
    :class:`numpy.lib.npyio.NpzFile`.
    """
    try:
        backend = data["backend"]
        attribute_distribution = AttributeDistribution(
            int(data["attribute_distribution"]["num_attributes"]),
            _resolve_array(data["attribute_distribution"], "probabilities",
                           SIDECAR_ATTRIBUTE_KEY, arrays, float),
        )
        correlations = CorrelationDistribution(
            int(data["correlations"]["num_attributes"]),
            _resolve_array(data["correlations"], "probabilities",
                           SIDECAR_CORRELATION_KEY, arrays, float),
        )
        structural_data = dict(data["structural"])
        if "degrees" not in structural_data:
            structural_data["degrees"] = _resolve_array(
                structural_data, "degrees", SIDECAR_DEGREES_KEY, arrays,
                np.int64,
            )
        structural = _structural_from_dict(backend, structural_data)
    except KeyError as exc:
        raise ArtifactFormatError(
            f"artifact parameters are missing required key {exc}"
        ) from None
    return AgmParameters(
        attribute_distribution=attribute_distribution,
        correlations=correlations,
        structural=structural,
        backend=backend,
    )


# ----------------------------------------------------------------------
# The artifact
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ModelArtifact:
    """A fitted AGM(-DP) model, ready to sample from — the unit of serving.

    Attributes
    ----------
    parameters:
        The fitted AGM parameter sets (Θ_X, Θ_F, Θ_M + backend).
    spec_hash:
        Hash of the originating :class:`~repro.api.spec.ReleaseSpec`'s
        fit-relevant fields; the service's cache key.
    num_iterations / handle_orphans / rewire_equivalence:
        Generation knobs recorded at fit time so sampling needs nothing but
        the artifact, a count and a seed.  ``rewire_equivalence`` pins the
        rewiring contract the samples are drawn under (``"exact"`` or
        ``"distributional"``).
    accountant:
        Serialisable snapshot of the fit's privacy ledger
        (:meth:`~repro.privacy.accountant.PrivacyAccountant.as_dict`), or
        ``None`` for a non-private fit.  Sampling never changes it — that is
        post-processing invariance made auditable.
    manifest:
        The fit pipeline's :class:`~repro.core.pipeline.RunManifest` as a
        plain dictionary (splits, spends, seed, timings, input description).
    """

    parameters: AgmParameters
    spec_hash: str
    num_iterations: int = 2
    handle_orphans: bool = True
    rewire_equivalence: str = "exact"
    accountant: Optional[Dict[str, Any]] = None
    manifest: Dict[str, Any] = field(default_factory=dict)
    created_at: str = ""
    library_version: str = ""

    # ------------------------------------------------------------------
    # Identity and metadata
    # ------------------------------------------------------------------
    @property
    def artifact_id(self) -> str:
        """Stable identifier served by ``GET /artifacts/<id>``."""
        return f"art-{self.spec_hash}"

    @property
    def backend(self) -> str:
        """The structural backend the parameters were fitted for."""
        return self.parameters.backend

    @property
    def epsilon(self) -> Optional[float]:
        """The global ε of the fit (``None`` for a non-private artifact)."""
        if self.accountant is None:
            return None
        return self.accountant.get("total_epsilon")

    @property
    def is_private(self) -> bool:
        """Whether the artifact holds differentially private parameters."""
        return self.accountant is not None

    def spends(self) -> Dict[str, float]:
        """Per-stage ε ledger of the fit (empty for non-private artifacts)."""
        if self.accountant is None:
            return {}
        return dict(self.accountant.get("spends", {}))

    def describe(self) -> Dict[str, Any]:
        """Metadata summary (no parameter arrays) — the ``GET /artifacts`` view."""
        return {
            "artifact_id": self.artifact_id,
            "spec_hash": self.spec_hash,
            "format_version": ARTIFACT_FORMAT_VERSION,
            "backend": self.backend,
            "private": self.is_private,
            "epsilon": self.epsilon,
            "num_nodes": self.parameters.num_nodes,
            "num_attributes": self.parameters.num_attributes,
            "num_iterations": self.num_iterations,
            "handle_orphans": self.handle_orphans,
            "rewire_equivalence": self.rewire_equivalence,
            "accountant": self.accountant,
            "created_at": self.created_at,
            "library_version": self.library_version,
        }

    def run_manifest(self):
        """The fit manifest re-materialised as a :class:`RunManifest` (or ``None``)."""
        if not self.manifest:
            return None
        from repro.core.pipeline import RunManifest

        return RunManifest.from_dict(self.manifest)

    # ------------------------------------------------------------------
    # Sampling (post-processing: spends no ε)
    # ------------------------------------------------------------------
    def synthesizer(self, memory_budget_mb: Optional[int] = None
                    ) -> AgmSynthesizer:
        """A synthesizer configured with the artifact's generation knobs.

        ``memory_budget_mb`` is a sample-time run-control knob (like the
        seed), deliberately *not* persisted in the artifact: the budget
        shapes how generation shards its work, never which distribution is
        sampled.
        """
        return AgmSynthesizer(
            self.parameters,
            num_iterations=self.num_iterations,
            handle_orphans=self.handle_orphans,
            rewire_equivalence=self.rewire_equivalence,
            memory_budget_mb=memory_budget_mb,
        )

    def sample(self, count: int = 1, seed: SeedLike = None,
               memory_budget_mb: Optional[int] = None
               ) -> List[AttributedGraph]:
        """Sample ``count`` synthetic graphs; sample ``i`` is a pure function
        of ``(artifact, seed, i)``.

        Each sample draws from its own stream spawned from ``seed``
        (:func:`repro.utils.rng.spawn_streams`), so a served sample and a
        direct library call at the same seed are bit-identical, and asking
        for more samples never perturbs the ones already drawn.
        ``memory_budget_mb`` bounds each sample's generation working set;
        over-budget generation raises
        :class:`~repro.utils.memory.MemoryBudgetError`.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        synthesizer = self.synthesizer(memory_budget_mb=memory_budget_mb)
        return [
            synthesizer.sample(rng=stream)
            for stream in spawn_streams(seed, count)
        ]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The versioned JSON document form (arrays inline, self-contained)."""
        return {
            "format": ARTIFACT_FORMAT,
            "format_version": ARTIFACT_FORMAT_VERSION,
            "artifact_id": self.artifact_id,
            "spec_hash": self.spec_hash,
            "created_at": self.created_at,
            "library_version": self.library_version,
            "num_iterations": self.num_iterations,
            "handle_orphans": self.handle_orphans,
            "rewire_equivalence": self.rewire_equivalence,
            "accountant": self.accountant,
            "manifest": self.manifest,
            "parameters": parameters_to_dict(self.parameters),
        }

    def sidecar_arrays(self) -> Dict[str, np.ndarray]:
        """The large parameter arrays, keyed by their sidecar member names."""
        return {
            SIDECAR_ATTRIBUTE_KEY: np.asarray(
                self.parameters.attribute_distribution.probabilities,
                dtype=float,
            ),
            SIDECAR_CORRELATION_KEY: np.asarray(
                self.parameters.correlations.probabilities, dtype=float
            ),
            SIDECAR_DEGREES_KEY: np.asarray(
                self.parameters.structural.degrees, dtype=np.int64
            ),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any],
                  arrays: Optional[Mapping[str, Any]] = None
                  ) -> "ModelArtifact":
        """Rebuild an artifact, checking the format tag and version first.

        ``arrays`` supplies the sidecar members for a version-2 document
        whose manifest references an ``.npz`` sidecar (:meth:`load` passes
        the lazily opened file); a sidecar-referencing document without
        ``arrays`` is rejected because the arrays are unreachable from the
        document alone.
        """
        if not isinstance(payload, Mapping):
            raise ArtifactFormatError(
                f"artifact document must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        document_format = payload.get("format")
        if document_format != ARTIFACT_FORMAT:
            raise ArtifactFormatError(
                f"not a model artifact: format {document_format!r}, expected "
                f"{ARTIFACT_FORMAT!r}"
            )
        version = payload.get("format_version")
        if version not in READABLE_FORMAT_VERSIONS:
            raise ArtifactFormatError(
                f"unsupported artifact format_version {version!r}; this build "
                f"reads versions {READABLE_FORMAT_VERSIONS}"
            )
        if payload.get("sidecar") and arrays is None:
            raise ArtifactFormatError(
                f"artifact references sidecar {payload['sidecar']!r}; load it "
                f"from disk with ModelArtifact.load so the sidecar can be "
                f"resolved"
            )
        try:
            parameters = parameters_from_dict(payload["parameters"],
                                              arrays=arrays)
        except KeyError:
            raise ArtifactFormatError(
                "artifact is missing the 'parameters' section"
            ) from None
        accountant = payload.get("accountant")
        return cls(
            parameters=parameters,
            spec_hash=str(payload.get("spec_hash", "")),
            num_iterations=int(payload.get("num_iterations", 2)),
            handle_orphans=bool(payload.get("handle_orphans", True)),
            rewire_equivalence=str(
                payload.get("rewire_equivalence", "exact")
            ),
            accountant=dict(accountant) if accountant is not None else None,
            manifest=dict(payload.get("manifest") or {}),
            created_at=str(payload.get("created_at", "")),
            library_version=str(payload.get("library_version", "")),
        )

    def save(self, path: Union[str, Path], sidecar: bool = True) -> Path:
        """Write the artifact to ``path``, atomically.

        With ``sidecar=True`` (the default, format version 2) the large
        parameter arrays go to ``<path-stem>.npz`` next to the manifest and
        the manifest references it by file name; with ``sidecar=False`` the
        arrays are inlined into the JSON document (still a version-2
        document, readable without the sidecar).

        Every file lands in a temporary name in the same directory, is
        fsync'd, then renamed over its target (``os.replace``) — and the
        sidecar is committed *before* the manifest, so a crash mid-save can
        never leave a manifest referencing a missing or torn sidecar:
        readers observe either the previous complete artifact or the new
        one.
        """
        path = Path(path)
        document = self.to_dict()
        if sidecar:
            sidecar_path = path.with_suffix(".npz")
            if sidecar_path == path:
                raise ArtifactError(
                    f"manifest path {path} collides with its .npz sidecar; "
                    f"use a different extension for the manifest"
                )
            document["sidecar"] = sidecar_path.name
            parameters = document["parameters"]
            del parameters["attribute_distribution"]["probabilities"]
            del parameters["correlations"]["probabilities"]
            del parameters["structural"]["degrees"]
            self._write_sidecar(sidecar_path)
        temp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        try:
            with open(temp, "w", encoding="utf-8") as handle:
                json.dump(document, handle)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            fire("artifact.save.before_replace")
            os.replace(temp, path)
        except BaseException:
            try:
                os.unlink(temp)
            except OSError:
                pass
            raise
        return path

    def _write_sidecar(self, sidecar_path: Path) -> None:
        """Atomically write the ``.npz`` array sidecar."""
        temp = sidecar_path.with_name(
            f".{sidecar_path.name}.tmp-{os.getpid()}"
        )
        try:
            with open(temp, "wb") as handle:
                np.savez(handle, **self.sidecar_arrays())
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp, sidecar_path)
        except BaseException:
            try:
                os.unlink(temp)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ModelArtifact":
        """Load an artifact written by :meth:`save` (format-checked).

        A version-2 manifest referencing an ``.npz`` sidecar opens the
        sidecar with :func:`numpy.load` (``allow_pickle=False``); members
        are read from the zip lazily, on first access.
        """
        path = Path(path)
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ArtifactFormatError(
                    f"{path} is not valid JSON: {exc}"
                ) from None
        arrays = None
        sidecar_name = payload.get("sidecar") if isinstance(payload, dict) \
            else None
        if sidecar_name:
            if os.path.basename(str(sidecar_name)) != sidecar_name:
                raise ArtifactFormatError(
                    f"sidecar reference {sidecar_name!r} must be a bare file "
                    f"name next to the manifest"
                )
            sidecar_path = path.parent / sidecar_name
            try:
                arrays = np.load(sidecar_path, allow_pickle=False)
            except FileNotFoundError:
                raise ArtifactFormatError(
                    f"artifact {path} references missing sidecar "
                    f"{sidecar_path}"
                ) from None
        try:
            return cls.from_dict(payload, arrays=arrays)
        finally:
            if arrays is not None:
                arrays.close()

    @classmethod
    def create(cls, parameters: AgmParameters, spec,
               accountant=None, manifest: Optional[Mapping[str, Any]] = None
               ) -> "ModelArtifact":
        """Build an artifact for freshly fitted ``parameters``.

        ``spec`` is the originating :class:`~repro.api.spec.ReleaseSpec`;
        ``accountant`` the fit's :class:`PrivacyAccountant` (or ``None``).
        """
        import repro

        snapshot = accountant.as_dict() if accountant is not None else None
        return cls(
            parameters=parameters,
            spec_hash=spec.spec_hash,
            num_iterations=spec.num_iterations,
            handle_orphans=spec.handle_orphans,
            rewire_equivalence=getattr(spec, "rewire_equivalence", "exact"),
            accountant=snapshot,
            manifest=dict(manifest or {}),
            created_at=datetime.datetime.now(datetime.timezone.utc)
            .isoformat(timespec="seconds"),
            library_version=repro.__version__,
        )
