"""Data-owner scenario: privately release a social graph loaded from disk.

This mirrors the paper's motivating workflow (Section 1): a data owner holds
a sensitive attributed social network and wants to hand analysts a synthetic
graph they can study freely, with a formal ε-differential-privacy guarantee
covering both the relationships (edges) and the node attributes.

The script drives everything through the public API:

1. writes an example edge list + attribute table to a temporary directory
   (standing in for the owner's real files),
2. declares one ``ReleaseSpec`` per candidate privacy budget, pointing at
   those files,
3. fits each spec once (``ReleaseSession.fit``) and persists the fitted
   model with ``ModelArtifact.save`` — the owner can archive the artifact
   and keep sampling releases later without re-touching the raw data,
4. reloads each artifact from disk, samples a release, and prints a utility
   report so the owner can pick the ε they are comfortable with.

Run with::

    python examples/data_owner_release.py
"""

import tempfile
from pathlib import Path

from repro import ModelArtifact, ReleaseSession, ReleaseSpec
from repro import evaluate_synthetic_graph, petster_like
from repro.graphs.io import write_attribute_table, write_edge_list


def prepare_input_files(directory: Path) -> tuple:
    """Stand-in for the data owner's existing files."""
    graph = petster_like(scale=0.25, seed=11)
    edge_path = directory / "friendships.txt"
    attribute_path = directory / "user_attributes.txt"
    write_edge_list(graph, edge_path)
    write_attribute_table(graph, attribute_path)
    return edge_path, attribute_path


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        edge_path, attribute_path = prepare_input_files(directory)
        session = ReleaseSession()

        # Candidate privacy budgets, strongest first; one spec per budget,
        # all reading the same owner files (loaded once, passed to fit).
        specs = [
            ReleaseSpec(edges=str(edge_path), attributes=str(attribute_path),
                        epsilon=epsilon, backend="tricycle", seed=0)
            for epsilon in (0.2, 0.5, 1.0)
        ]
        graph = specs[0].load_graph()
        for spec in specs:
            # Fit once; persist the fitted model.  The artifact carries the
            # DP parameters, the accountant's ledger and the fit manifest.
            artifact = session.fit(spec, graph=graph)
            epsilon = spec.epsilon
            artifact_path = directory / f"model_eps_{epsilon}.json"
            artifact.save(artifact_path)

            # Later (or on another machine): load and sample — this is pure
            # post-processing, so it costs no further privacy budget.
            loaded = ModelArtifact.load(artifact_path)
            synthetic = loaded.sample(count=1, seed=42)[0]
            release_path = directory / f"synthetic_eps_{epsilon}.txt"
            write_edge_list(synthetic, release_path)

            report = evaluate_synthetic_graph(graph, synthetic)
            print(f"\nepsilon = {epsilon}  (artifact {loaded.artifact_id})")
            print(f"  ledger: {loaded.spends()}")
            print(f"  released file: {release_path.name}")
            print(f"  correlation Hellinger distance: {report.theta_f_hellinger:.3f}")
            print(f"  degree-distribution KS:         {report.degree_ks:.3f}")
            print(f"  triangle-count relative error:  {report.triangle_mre:.3f}")
            print(f"  edge-count relative error:      {report.edge_count_mre:.3f}")

        print("\nPick the smallest epsilon whose utility is acceptable; the "
              "synthetic releases can be shared without further privacy cost.")


if __name__ == "__main__":
    main()
