"""Data-owner scenario: privately release a social graph loaded from disk.

This mirrors the paper's motivating workflow (Section 1): a data owner holds
a sensitive attributed social network and wants to hand analysts a synthetic
graph they can study freely, with a formal ε-differential-privacy guarantee
covering both the relationships (edges) and the node attributes.

The script

1. writes an example edge list + attribute table to a temporary directory
   (standing in for the owner's real files),
2. loads them back with the library's I/O helpers,
3. fits AGM-DP at a few privacy budgets,
4. writes one synthetic release per budget and prints a utility report so the
   owner can pick the ε they are comfortable with.

Run with::

    python examples/data_owner_release.py
"""

import tempfile
from pathlib import Path

from repro import AgmDp, evaluate_synthetic_graph, petster_like
from repro.graphs.io import (
    load_attributed_graph,
    write_attribute_table,
    write_edge_list,
)


def prepare_input_files(directory: Path) -> tuple:
    """Stand-in for the data owner's existing files."""
    graph = petster_like(scale=0.25, seed=11)
    edge_path = directory / "friendships.txt"
    attribute_path = directory / "user_attributes.txt"
    write_edge_list(graph, edge_path)
    write_attribute_table(graph, attribute_path)
    return edge_path, attribute_path


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        edge_path, attribute_path = prepare_input_files(directory)

        # The owner loads their own data.
        graph, _label_map = load_attributed_graph(edge_path, attribute_path)
        print(f"Loaded input graph: {graph.num_nodes} nodes, "
              f"{graph.num_edges} edges, {graph.num_attributes} attributes")

        # Candidate privacy budgets, strongest first.
        for epsilon in (0.2, 0.5, 1.0):
            model = AgmDp(epsilon=epsilon, backend="tricycle", rng=0)
            synthetic = model.fit(graph).sample()

            release_path = directory / f"synthetic_eps_{epsilon}.txt"
            write_edge_list(synthetic, release_path)

            report = evaluate_synthetic_graph(graph, synthetic)
            print(f"\nepsilon = {epsilon}")
            print(f"  released file: {release_path.name}")
            print(f"  correlation Hellinger distance: {report.theta_f_hellinger:.3f}")
            print(f"  degree-distribution KS:         {report.degree_ks:.3f}")
            print(f"  triangle-count relative error:  {report.triangle_mre:.3f}")
            print(f"  edge-count relative error:      {report.edge_count_mre:.3f}")

        print("\nPick the smallest epsilon whose utility is acceptable; the "
              "synthetic releases can be shared without further privacy cost.")


if __name__ == "__main__":
    main()
