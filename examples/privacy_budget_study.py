"""Study how the privacy budget and its split affect synthesis quality.

Two questions a practitioner deploying AGM-DP has to answer are (a) what
overall ε to use, and (b) how to divide it among the model parameters.  The
paper uses an even split and budgets between 0.01 and ln(3); this example
sweeps both choices on a single dataset and prints the resulting utility so
the trade-off is visible.

It also demonstrates the Θ_F estimator comparison of Figure 5 (EdgeTruncation
vs smooth sensitivity vs sample-and-aggregate vs the naive Laplace baseline).

Run with::

    python examples/privacy_budget_study.py
"""

import math

from repro import ReleaseSession, ReleaseSpec, epinions_like
from repro.experiments.ablations import ablation_budget_split
from repro.experiments.figures import figure5_correlation_methods
from repro.experiments.tables import format_table


def sweep_epsilon(graph) -> None:
    print("=== Overall privacy budget sweep (AGMDP-TriCL) ===")
    session = ReleaseSession()
    rows = []
    for epsilon in (0.1, 0.3, math.log(2), math.log(3), 2.0):
        spec = ReleaseSpec(dataset="epinions", scale=0.03, epsilon=epsilon,
                           backend="tricycle", trials=1, num_iterations=2,
                           seed=0)
        result = session.evaluate(spec, graph=graph)
        rows.append({"epsilon": round(epsilon, 3), **result["report"]})
    print(format_table(rows))
    print()


def sweep_budget_split(graph) -> None:
    print("=== Budget split strategies at eps = 0.5 ===")
    rows = ablation_budget_split("epinions", epsilon=0.5, trials=1, seed=0,
                                 graph=graph)
    print(format_table(rows))
    print()
    custom = ReleaseSpec(dataset="epinions", scale=0.03, epsilon=0.5,
                         budget_split={"attributes": 0.1, "correlations": 0.4,
                                       "structural": 0.5})
    print("A custom split is part of the release spec: "
          f"{custom.budget_split}")
    print()


def compare_correlation_estimators(graph) -> None:
    print("=== Theta_F estimators (Figure 5 style) ===")
    rows = figure5_correlation_methods("epinions", epsilons=(0.1, 0.5, 1.0),
                                       trials=2, seed=0, graph=graph)
    print(format_table(rows))


def main() -> None:
    graph = epinions_like(scale=0.03, seed=3)
    print(f"Input graph: {graph.num_nodes} nodes, {graph.num_edges} edges\n")
    sweep_epsilon(graph)
    sweep_budget_split(graph)
    compare_correlation_estimators(graph)


if __name__ == "__main__":
    main()
