"""Compare the structural models the paper studies (Figures 2 and 3).

FCL matches the degree distribution but produces almost no clustering; TCL
and TriCycLe both target clustering, and TriCycLe does so using only
statistics (degree sequence + triangle count) that admit accurate DP
estimators.  This example fits all three to the same input graph and prints
the comparison the paper plots.

Run with::

    python examples/structural_model_comparison.py
"""

from repro import lastfm_like, summary
from repro.graphs.statistics import (
    average_local_clustering,
    global_clustering_coefficient,
    triangle_count,
)
from repro.metrics.graph_metrics import degree_hellinger, degree_ks
from repro.models import ChungLuModel, TclModel, TriCycLeModel
from repro.models.tcl import estimate_transitive_closure_probability
from repro.params.structural import fit_tricycle


def main() -> None:
    graph = lastfm_like(scale=0.3, seed=5)
    print("Input graph:", summary(graph).as_dict())

    parameters = fit_tricycle(graph)
    rho = estimate_transitive_closure_probability(graph)
    print(f"\nFitted parameters: m = {parameters.num_edges}, "
          f"n_triangles = {parameters.num_triangles}, TCL rho = {rho:.3f}")

    models = {
        "FCL": ChungLuModel(parameters.degrees),
        "TCL": TclModel(parameters.degrees, rho=rho),
        "TriCycLe": TriCycLeModel(parameters.degrees, parameters.num_triangles),
    }

    print(f"\n{'model':10s} {'triangles':>10s} {'C_global':>9s} {'C_avg':>7s} "
          f"{'KS_S':>6s} {'H_S':>6s}")
    print(f"{'input':10s} {triangle_count(graph):>10d} "
          f"{global_clustering_coefficient(graph):>9.3f} "
          f"{average_local_clustering(graph):>7.3f} {'-':>6s} {'-':>6s}")
    for name, model in models.items():
        synthetic = model.generate(num_nodes=graph.num_nodes, rng=1)
        print(f"{name:10s} {triangle_count(synthetic):>10d} "
              f"{global_clustering_coefficient(synthetic):>9.3f} "
              f"{average_local_clustering(synthetic):>7.3f} "
              f"{degree_ks(graph, synthetic):>6.3f} "
              f"{degree_hellinger(graph, synthetic):>6.3f}")

    print("\nExpected shape (paper, Figures 2-3): all models track the degree "
          "distribution; FCL's clustering collapses while TCL and TriCycLe "
          "stay close to the input.")


if __name__ == "__main__":
    main()
