"""Quickstart: declare a release, fit once, sample many — via the public API.

Run with::

    python examples/quickstart.py

A ``ReleaseSpec`` describes *what* to release (input graph, privacy budget
epsilon, structural backend); ``ReleaseSession.fit`` spends epsilon exactly
once and returns a ``ModelArtifact``; every sample drawn from the artifact
afterwards is pure post-processing — free of further privacy cost.
"""

from repro import ReleaseSession, ReleaseSpec, evaluate_synthetic_graph, summary


def main() -> None:
    # 1. Declare the release: a Last.fm-like stand-in dataset, epsilon = 1,
    #    the TriCycLe backend.  Real data: ReleaseSpec(edges="friends.txt").
    spec = ReleaseSpec(dataset="lastfm", scale=0.25, epsilon=1.0,
                       backend="tricycle", seed=7)
    graph = spec.load_graph()
    print("Input graph:")
    for key, value in summary(graph).as_dict().items():
        print(f"  {key:20s} {value}")

    # 2. Fit once.  The artifact holds the DP parameters plus the privacy
    #    accountant's per-stage ledger (Algorithm 3's budget split).
    session = ReleaseSession()
    artifact = session.fit(spec, graph=graph)
    print(f"\nPrivacy ledger of {artifact.artifact_id}:")
    for stage, epsilon in artifact.spends().items():
        print(f"  {stage:22s} epsilon = {epsilon:.3f}")

    # 3. Sample many.  Post-processing invariance: no additional epsilon is
    #    spent, however many graphs are drawn.  The artifact could equally be
    #    saved to disk (artifact.save) or served over HTTP (repro serve).
    synthetic = session.sample(artifact, count=3, seed=11)
    print("\nThree synthetic releases (same model, independent draws):")
    for index, sample in enumerate(synthetic):
        print(f"  sample {index}: {sample.num_nodes} nodes, "
              f"{sample.num_edges} edges")

    # 4. Evaluate fidelity with the paper's metrics (Tables 2-5 columns).
    report = evaluate_synthetic_graph(graph, synthetic[0])
    print("\nError metrics (first sample vs input):")
    for column, value in report.as_paper_row().items():
        print(f"  {column:10s} {value:.4f}")


if __name__ == "__main__":
    main()
