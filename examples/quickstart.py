"""Quickstart: fit AGM-DP to an attributed social graph and sample a synthetic one.

Run with::

    python examples/quickstart.py

The script generates a small Last.fm-like attributed graph, fits the
differentially private AGM-DP model (TriCycLe backend, ε = 1), samples a
synthetic graph and reports how well the synthetic graph preserves the
structure and attribute correlations of the input.
"""

from repro import AgmDp, evaluate_synthetic_graph, lastfm_like, summary


def main() -> None:
    # 1. Obtain the sensitive input graph.  Here we use a generated stand-in
    #    for the paper's Last.fm dataset; real data can be loaded with
    #    repro.graphs.io.load_attributed_graph.
    graph = lastfm_like(scale=0.25, seed=7)
    print("Input graph:")
    for key, value in summary(graph).as_dict().items():
        print(f"  {key:20s} {value}")

    # 2. Fit the differentially private model.  The privacy budget epsilon is
    #    split internally across the attribute distribution, the
    #    attribute-edge correlations, the degree sequence and the triangle
    #    count (Algorithm 3 of the paper).
    model = AgmDp(epsilon=1.0, backend="tricycle", rng=7)
    model.fit(graph)
    print("\nPrivacy budget ledger:")
    for label, epsilon in model.budget.ledger():
        print(f"  {label:15s} epsilon = {epsilon:.3f}")

    # 3. Sample a synthetic graph.  Sampling is pure post-processing, so any
    #    number of graphs can be released without additional privacy cost.
    synthetic = model.sample()
    print("\nSynthetic graph:")
    for key, value in summary(synthetic).as_dict().items():
        print(f"  {key:20s} {value}")

    # 4. Evaluate fidelity with the paper's metrics (Tables 2-5 columns).
    report = evaluate_synthetic_graph(graph, synthetic)
    print("\nError metrics (synthetic vs input):")
    for column, value in report.as_paper_row().items():
        print(f"  {column:10s} {value:.4f}")


if __name__ == "__main__":
    main()
